// Repository-level benchmarks: one benchmark per table and figure of the
// paper's evaluation section, plus the ablation benches called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks exercise the same harnesses as cmd/mgbench at quick scale;
// EXPERIMENTS.md records the paper-vs-measured comparison.
package mgdiffnet_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mgdiffnet/internal/core"
	"mgdiffnet/internal/dist"
	"mgdiffnet/internal/experiments"
	"mgdiffnet/internal/fem"
	"mgdiffnet/internal/field"
	"mgdiffnet/internal/gmg"
	"mgdiffnet/internal/nn"
	"mgdiffnet/internal/perfmodel"
	"mgdiffnet/internal/pinn"
	"mgdiffnet/internal/serve"
	"mgdiffnet/internal/sparse"
	"mgdiffnet/internal/tensor"
	"mgdiffnet/internal/unet"
	"mgdiffnet/internal/vtkio"
)

// quickTrainer builds a small trainer for epoch-cost benches.
func quickTrainer(dim, res int, strategy core.Strategy, levels int) *core.Trainer {
	cfg := core.DefaultConfig(dim)
	cfg.Strategy = strategy
	cfg.Levels = levels
	cfg.FinestRes = res
	cfg.Samples = 4
	cfg.BatchSize = 2
	cfg.RestrictionEpochs = 1
	cfg.MaxEpochsPerStage = 2
	cfg.Patience = 1
	net := unet.DefaultConfig(dim)
	net.BaseFilters = 4
	cfg.Net = &net
	return core.NewTrainer(cfg)
}

// BenchmarkFigure2EpochTime measures the per-epoch training cost as the 2D
// resolution grows (the paper's Figure 2 motivation: cost grows sharply
// with degrees of freedom).
func BenchmarkFigure2EpochTime(b *testing.B) {
	for _, res := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("res%d", res), func(b *testing.B) {
			tr := quickTrainer(2, res, core.Base, 1)
			tr.TrainEpoch(res) // warm-up
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.TrainEpoch(res)
			}
		})
	}
}

// BenchmarkTable1Strategies times one full training run per schedule (the
// quantity compared across the paper's Table 1 rows).
func BenchmarkTable1Strategies(b *testing.B) {
	for _, strat := range []core.Strategy{core.Base, core.V, core.W, core.F, core.HalfV} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				levels := 2
				if strat == core.Base {
					levels = 1
				}
				tr := quickTrainer(2, 32, strat, levels)
				rep := tr.Run()
				if rep.FinalLoss <= 0 {
					b.Fatal("bad loss")
				}
			}
		})
	}
}

// BenchmarkTable2Adaptation times Half-V training with and without
// architectural adaptation (the paper's Table 2 comparison).
func BenchmarkTable2Adaptation(b *testing.B) {
	for _, adapt := range []bool{false, true} {
		name := "NoAdaptation"
		if adapt {
			name = "Adaptation"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(2)
				cfg.Strategy = core.HalfV
				cfg.Levels = 2
				cfg.FinestRes = 32
				cfg.Samples = 4
				cfg.BatchSize = 2
				cfg.RestrictionEpochs = 1
				cfg.MaxEpochsPerStage = 2
				cfg.Patience = 1
				cfg.Adapt = adapt
				net := unet.DefaultConfig(2)
				net.BaseFilters = 4
				cfg.Net = &net
				core.NewTrainer(cfg).Run()
			}
		})
	}
}

// BenchmarkFigure8Epoch3D measures one 3D training epoch at the coarse and
// fine levels of the Figure 8 loss-trajectory study.
func BenchmarkFigure8Epoch3D(b *testing.B) {
	for _, res := range []int{8, 16} {
		b.Run(fmt.Sprintf("res%d", res), func(b *testing.B) {
			tr := quickTrainer(3, 16, core.HalfV, 2)
			tr.TrainEpoch(res)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.TrainEpoch(res)
			}
		})
	}
}

// BenchmarkFigure9Allreduce compares the ring allreduce against the naive
// all-to-all baseline at the gradient sizes of the scaling study (the
// communication ablation of DESIGN.md).
func BenchmarkFigure9Allreduce(b *testing.B) {
	const p = 4
	const n = 1 << 16
	run := func(b *testing.B, reduce func(rank int, x []float64, tr dist.Transport) error) {
		vecs := make([][]float64, p)
		for r := range vecs {
			vecs[r] = make([]float64, n)
			for i := range vecs[r] {
				vecs[r][i] = float64(r + i%7)
			}
		}
		b.SetBytes(int64(8 * n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			trs := dist.NewChannelRing(p)
			var wg sync.WaitGroup
			for r := 0; r < p; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					if err := reduce(r, vecs[r], trs[r]); err != nil {
						b.Error(err)
					}
				}(r)
			}
			wg.Wait()
		}
	}
	b.Run("Ring", func(b *testing.B) {
		run(b, func(rank int, x []float64, tr dist.Transport) error {
			return dist.RingAllReduce(rank, p, x, tr)
		})
	})
	b.Run("NaiveAllToAll", func(b *testing.B) {
		run(b, func(rank int, x []float64, tr dist.Transport) error {
			return dist.NaiveAllReduce(rank, p, x, tr)
		})
	})
	// The trainer's collective: rank-order reduce-scatter + all-gather
	// through persistent Communicators — same asymptotic traffic as the
	// ring, zero steady-state allocations, chunking-invariant sums.
	b.Run("RankOrderComm", func(b *testing.B) {
		trs := dist.NewChannelRing(p)
		comms := make([]*dist.Communicator, p)
		vecs := make([][]float64, p)
		for r := 0; r < p; r++ {
			comms[r] = dist.NewCommunicator(trs[r])
			vecs[r] = make([]float64, n)
			for i := range vecs[r] {
				vecs[r][i] = float64(r + i%7)
			}
		}
		b.SetBytes(int64(8 * n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for r := 0; r < p; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					if err := comms[r].AllReduce(vecs[r]); err != nil {
						b.Error(err)
					}
				}(r)
			}
			wg.Wait()
		}
	})
}

// BenchmarkBucketedAllreduceOverlap isolates the DDP overlap strategy the
// trainer uses: each rank "produces" its gradient vector bucket by bucket
// (standing in for backward) while a per-rank comm goroutine reduces
// finished buckets concurrently. The monolithic case produces everything
// first and reduces once. Chunking invariance of the rank-order collective
// makes the two bit-identical, so the benchmark measures pure overlap.
func BenchmarkBucketedAllreduceOverlap(b *testing.B) {
	const p = 4
	const n = 1 << 16
	const nb = 8
	const bucket = n / nb
	trs := dist.NewChannelRing(p)
	comms := make([]*dist.Communicator, p)
	vecs := make([][]float64, p)
	for r := 0; r < p; r++ {
		comms[r] = dist.NewCommunicator(trs[r])
		vecs[r] = make([]float64, n)
	}
	produce := func(x []float64, lo, hi, r, iter int) {
		for i := lo; i < hi; i++ {
			x[i] = float64(r+1)*0.5 + float64(i%13)*0.01 + float64(iter%7)
		}
	}
	b.Run("Monolithic", func(b *testing.B) {
		b.SetBytes(8 * n)
		for it := 0; it < b.N; it++ {
			var wg sync.WaitGroup
			for r := 0; r < p; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					produce(vecs[r], 0, n, r, it)
					if err := comms[r].AllReduce(vecs[r]); err != nil {
						b.Error(err)
					}
				}(r)
			}
			wg.Wait()
		}
	})
	b.Run("BucketedOverlap", func(b *testing.B) {
		b.SetBytes(8 * n)
		for it := 0; it < b.N; it++ {
			var wg sync.WaitGroup
			for r := 0; r < p; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					x := vecs[r]
					ready := make(chan int, nb)
					done := make(chan error, 1)
					go func() {
						var firstErr error
						for lo := range ready {
							hi := min(lo+bucket, n)
							if err := comms[r].AllReduce(x[lo:hi]); err != nil && firstErr == nil {
								firstErr = err
							}
						}
						done <- firstErr
					}()
					for lo := 0; lo < n; lo += bucket {
						produce(x, lo, min(lo+bucket, n), r, it)
						ready <- lo
					}
					close(ready)
					if err := <-done; err != nil {
						b.Error(err)
					}
				}(r)
			}
			wg.Wait()
		}
	})
}

// BenchmarkFigure9ParallelEpoch measures a data-parallel 3D epoch at
// increasing worker counts — the measured half of the strong-scaling study.
func BenchmarkFigure9ParallelEpoch(b *testing.B) {
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", p), func(b *testing.B) {
			net := unet.DefaultConfig(3)
			net.BaseFilters = 4
			net.Depth = 2
			net.BatchNorm = false
			pt, err := dist.NewParallelTrainer(dist.ParallelConfig{
				Workers: p, Dim: 3, Res: 8, Samples: 8, GlobalBatch: 4,
				LR: 1e-3, Seed: 5, Net: &net,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer pt.Close()
			if _, err := pt.TrainEpoch(8); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pt.TrainEpoch(8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistHalfVStage times one distributed Half-V stage: the
// coarsest-entry prolongation stage of the multigrid schedule, run
// data-parallel through core.RunSchedule with a 2-worker ParallelTrainer
// backend (PR 3's BENCH_pr3.json case).
func BenchmarkDistHalfVStage(b *testing.B) {
	net := unet.DefaultConfig(2)
	net.BaseFilters = 4
	net.BatchNorm = false
	cfg := core.DefaultConfig(2)
	cfg.Strategy = core.HalfV
	cfg.Levels = 1
	cfg.FinestRes = 16
	cfg.Samples = 8
	cfg.BatchSize = 4
	cfg.MaxEpochsPerStage = 2
	cfg.Patience = 1
	cfg.Seed = 9
	cfg.Net = &net
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pt, err := dist.NewParallelTrainer(dist.ParallelConfig{
			Workers: 2, Dim: 2, Res: cfg.FinestRes, Samples: cfg.Samples,
			GlobalBatch: cfg.BatchSize, LR: cfg.LR, Seed: cfg.Seed, Net: &net,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := core.RunSchedule(cfg, pt, core.RunOptions{})
		b.StopTimer()
		pt.Close()
		if err != nil {
			b.Fatal(err)
		}
		if rep.FinalLoss <= 0 {
			b.Fatal("bad loss")
		}
		b.StartTimer()
	}
}

// BenchmarkFigure10Model evaluates the Bridges2 cluster model across the
// full 1–128 node sweep (cheap; included so every figure has a bench).
func BenchmarkFigure10Model(b *testing.B) {
	nw := unet.New(unet.DefaultConfig(3)).ParamCount()
	w := perfmodel.Figure10Workload(nw)
	nodes := []int{1, 2, 4, 8, 16, 32, 64, 128}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := perfmodel.ScalingSeries(perfmodel.Bridges2, w, nodes, 1)
		if pts[len(pts)-1].Speedup < 1 {
			b.Fatal("bad model")
		}
	}
}

// BenchmarkTable3Inference measures the network prediction used in the
// Tables 3/4/5/7 comparisons.
func BenchmarkTable3Inference(b *testing.B) {
	tr := quickTrainer(2, 32, core.HalfV, 2)
	tr.Run()
	w := experiments.Table3Omega
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := tr.Predict(w, 32)
		if u.Len() == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkInferenceVsFEM is the §4.3 comparison: a forward pass against
// CG and geometric-multigrid solves of the same problem.
func BenchmarkInferenceVsFEM(b *testing.B) {
	const res = 64
	w := experiments.Table3Omega
	nu := field.Raster2D(w, res)
	nuG := field.Raster2D(w, res+1)

	b.Run("Inference", func(b *testing.B) {
		tr := quickTrainer(2, res, core.Base, 1)
		batch := tensor.New(1, 1, res, res)
		copy(batch.Data, nu.Data)
		tr.Net.Forward(batch, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Net.Forward(batch, false)
		}
	})
	b.Run("FEMSolveCG", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, st := fem.Solve2D(nu, 1e-8, 20000); !st.Converged {
				b.Fatal("CG failed")
			}
		}
	})
	b.Run("FEMSolveGMG", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, st := gmg.NewSolver2D(nuG, gmg.Options{Tol: 1e-8}).Solve(); !st.Converged {
				b.Fatal("GMG failed")
			}
		}
	})
}

// BenchmarkAblationMatrixFree compares the training loss gradient computed
// matrix-free against assembling a CSR stiffness matrix and applying it —
// design choice 1 of DESIGN.md.
func BenchmarkAblationMatrixFree(b *testing.B) {
	const res = 64
	w := experiments.Table3Omega
	nu := field.Raster2D(w, res)
	p := fem.NewPoisson2D(res)
	u := p.BoundaryField()
	out := tensor.New(res, res)

	b.Run("MatrixFree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Apply(u, nu, out)
		}
	})
	b.Run("AssembleAndApply", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, _ := fem.Assemble2D(p, nu)
			m.Apply(out.Data, u.Data)
		}
	})
	b.Run("ApplyOnlyCSR", func(b *testing.B) {
		m, _ := fem.Assemble2D(p, nu)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Apply(out.Data, u.Data)
		}
	})
}

// BenchmarkAblationRestriction compares the two ways of producing coarse
// inputs: rasterizing the analytic field at the coarse grid versus
// average-pooling the fine raster — design choice 3 of DESIGN.md.
func BenchmarkAblationRestriction(b *testing.B) {
	w := experiments.Table3Omega
	const fine = 64
	b.Run("RasterCoarse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			field.Raster2D(w, fine/2)
		}
	})
	b.Run("AvgPoolFine", func(b *testing.B) {
		f := tensor.New(1, 1, fine, fine)
		copy(f.Data, field.Raster2D(w, fine).Data)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.RestrictInput(f)
		}
	})
}

// BenchmarkSubstrates covers the hot kernels the whole system rests on.
func BenchmarkSubstrates(b *testing.B) {
	b.Run("Conv2D_16ch_64x64", func(b *testing.B) {
		rng := nn.NewRNG(1)
		c := nn.NewConv2D(rng, "c", 16, 16, 3, 1, 1)
		x := tensor.New(1, 16, 64, 64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Forward(x, false)
		}
	})
	b.Run("Conv3D_8ch_16cube", func(b *testing.B) {
		rng := nn.NewRNG(2)
		c := nn.NewConv3D(rng, "c", 8, 8, 3, 1, 1)
		x := tensor.New(1, 8, 16, 16, 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Forward(x, false)
		}
	})
	b.Run("Energy3D_32cube", func(b *testing.B) {
		p := fem.NewPoisson3D(32)
		u := p.BoundaryField()
		nu := field.Raster3D(experiments.Table3Omega, 32)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Energy(u, nu)
		}
	})
	b.Run("Sobol4D", func(b *testing.B) {
		s := field.NewSobol(4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Next()
		}
	})
	b.Run("CG_Laplace2D_65", func(b *testing.B) {
		nu := tensor.Full(1, 65, 65)
		p := fem.NewPoisson2D(65)
		m, rhs := fem.Assemble2D(p, nu)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x := make([]float64, m.Size())
			sparse.CG(m, rhs, x, 1e-8, 10000)
		}
	})
}

// BenchmarkAblationConvLowering compares the direct convolution loops
// against the im2col+GEMM lowering used by production engines.
func BenchmarkAblationConvLowering(b *testing.B) {
	rng := nn.NewRNG(50)
	c := nn.NewConv2D(rng, "c", 16, 16, 3, 1, 1)
	x := tensor.New(1, 16, 64, 64)
	for i := range x.Data {
		x.Data[i] = float64(i%13) * 0.1
	}
	b.Run("Direct", func(b *testing.B) {
		c.Algo = nn.ConvDirect
		for i := 0; i < b.N; i++ {
			c.Forward(x, false)
		}
	})
	b.Run("Im2colGEMM", func(b *testing.B) {
		c.Algo = nn.ConvGEMM
		for i := 0; i < b.N; i++ {
			nn.Conv2DGEMM(c, x)
		}
	})
}

// BenchmarkAblationConv3DLowering compares the direct 7-deep Conv3D loops
// against the Im2Col3D+GEMM lowering at the volumetric shapes of the 3D
// DiffNet (the acceptance shape is the 64³ forward). Short mode keeps only
// the 32³ smoke so the GEMM path still compiles and runs on every PR.
func BenchmarkAblationConv3DLowering(b *testing.B) {
	rng := nn.NewRNG(52)
	for _, res := range []int{32, 64} {
		if testing.Short() && res > 32 {
			continue
		}
		c := nn.NewConv3D(rng, "c", 4, 8, 3, 1, 1)
		x := tensor.New(1, 4, res, res, res)
		for i := range x.Data {
			x.Data[i] = float64(i%13) * 0.1
		}
		b.Run(fmt.Sprintf("res%d/Direct", res), func(b *testing.B) {
			c.Algo = nn.ConvDirect
			for i := 0; i < b.N; i++ {
				c.Forward(x, false)
			}
		})
		b.Run(fmt.Sprintf("res%d/Im2colGEMM", res), func(b *testing.B) {
			c.Algo = nn.ConvGEMM
			for i := 0; i < b.N; i++ {
				c.Forward(x, false)
			}
		})
	}
}

// BenchmarkAblationConv3DBackward is the training-path half of the 3D
// lowering ablation: direct loops vs col2im GEMM gradients.
func BenchmarkAblationConv3DBackward(b *testing.B) {
	rng := nn.NewRNG(53)
	res := 32
	if testing.Short() {
		res = 16
	}
	c := nn.NewConv3D(rng, "c", 4, 8, 3, 1, 1)
	x := tensor.New(1, 4, res, res, res)
	for i := range x.Data {
		x.Data[i] = float64(i%19) * 0.07
	}
	out := c.Forward(x, true)
	gradOut := tensor.New(out.Shape()...)
	for i := range gradOut.Data {
		gradOut.Data[i] = float64(i%23) * 0.03
	}
	b.Run("Direct", func(b *testing.B) {
		c.Algo = nn.ConvDirect
		for i := 0; i < b.N; i++ {
			nn.ZeroGrads(c)
			c.Backward(gradOut)
		}
	})
	b.Run("Im2colGEMM", func(b *testing.B) {
		c.Algo = nn.ConvGEMM
		for i := 0; i < b.N; i++ {
			nn.ZeroGrads(c)
			c.Backward(gradOut)
		}
	})
}

// BenchmarkMatMul compares the blocked parallel GEMM with the naive loop.
func BenchmarkMatMul(b *testing.B) {
	const n = 192
	a := tensor.New(n, n)
	c := tensor.New(n, n)
	for i := range a.Data {
		a.Data[i] = float64(i % 7)
		c.Data[i] = float64(i % 11)
	}
	b.Run("Blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMul(a, c)
		}
	})
	b.Run("Naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulNaive(a, c)
		}
	})
}

// BenchmarkModelParallelInference measures slab-decomposed inference (the
// paper's model-parallel future-work extension) against the monolithic
// forward pass.
func BenchmarkModelParallelInference(b *testing.B) {
	cfg := unet.DefaultConfig(2)
	cfg.BaseFilters = 4
	net := unet.New(cfg)
	x := tensor.New(1, 1, 128, 128)
	for i := range x.Data {
		x.Data[i] = float64(i%17) * 0.05
	}
	b.Run("Monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net.Forward(x, false)
		}
	})
	for _, workers := range []int{2, 4} {
		b.Run(fmt.Sprintf("Slabs%d", workers), func(b *testing.B) {
			si, err := dist.NewSpatialInference(net, workers, dist.HaloFor(net))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := si.Forward(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchOmega derives a distinct parameter vector per request index so the
// serving benchmarks measure batched dispatch, not cache or dedup hits.
func benchOmega(k int) field.Omega {
	var w field.Omega
	for j := range w {
		frac := float64((k*2654435761+j*40503)%10000) / 10000.0
		w[j] = -3 + 6*frac
	}
	return w
}

// BenchmarkServeThroughput is the serving acceptance benchmark: requests/s
// of the batched multi-replica engine (by coalescing width) against two
// sequential per-request baselines — one rasterize + net.Forward + BC
// imposition per query. SequentialForward pins DirectConv and is the
// pre-serving consumer exactly as it shipped before this subsystem (2D
// nets had no GEMM dispatch, every mginfer/experiment query paid the
// direct loops); SequentialLowered is the same per-request loop with the
// engine's kernel selection, isolating how much of the win is lowering
// versus dispatch. Every request uses a distinct ω, so the engine's cache
// and single-flight dedup never fire.
func BenchmarkServeThroughput(b *testing.B) {
	const res = 16
	cfg := unet.DefaultConfig(2)
	cfg.Depth = 2
	cfg.BaseFilters = 4
	net := unet.New(cfg)
	loss := fem.NewEnergyLoss(2)

	direct := cfg
	direct.DirectConv = true
	directNet := unet.New(direct)

	sequential := func(b *testing.B, n *unet.UNet) {
		in := tensor.New(1, 1, res, res)
		for i := 0; i < b.N; i++ {
			field.RasterInto(in.Data, benchOmega(i), 2, res)
			u := loss.WithBC(n.Forward(in, false))
			if u.Len() == 0 {
				b.Fatal("empty")
			}
		}
	}
	b.Run("SequentialForward", func(b *testing.B) { sequential(b, directNet) })
	b.Run("SequentialLowered", func(b *testing.B) { sequential(b, net) })

	for _, window := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("BatchedWindow%d", window), func(b *testing.B) {
			eng, err := serve.NewEngine(serve.Config{
				Net:         net,
				Replicas:    1, // single-replica: the ratio is pure batching, not parallelism
				MaxBatch:    window,
				BatchWindow: 200 * time.Microsecond,
				MaxQueue:    64, // above the client count: throughput, not shedding, is under test
				CacheSize:   -1,
				SlabVoxels:  -1,
				WarmRes:     []int{res},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			// More clients than cores keeps the queue saturated so batches
			// fill to MaxBatch instead of waiting out the window.
			const clients = 16
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						k := next.Add(1) - 1
						if k >= int64(b.N) {
							return
						}
						if _, err := eng.Solve(context.Background(), benchOmega(int(k)), res); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// BenchmarkVTKWrite measures the zlib-compressed field export path.
func BenchmarkVTKWrite(b *testing.B) {
	nu := field.Raster2D(experiments.Table3Omega, 128)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := vtkio.WriteImageData(&buf, []vtkio.Field{{Name: "nu", Data: nu}}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(8 * nu.Len()))
}

// BenchmarkBaselinePINNSolve times one pointwise single-instance solve —
// the per-query cost of the non-amortized baseline.
func BenchmarkBaselinePINNSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := pinn.DefaultConfig(experiments.Table3Omega)
		cfg.Epochs = 50
		cfg.Collocation = 128
		pinn.New(cfg).Solve()
	}
}

// BenchmarkSupervisedLabelGeneration times the FEM annotation cost the
// variational loss avoids (one label solve at 32²).
func BenchmarkSupervisedLabelGeneration(b *testing.B) {
	nu := field.Raster2D(experiments.Table3Omega, 32)
	for i := 0; i < b.N; i++ {
		if _, st := fem.Solve2D(nu, 1e-8, 20000); !st.Converged {
			b.Fatal("label solve failed")
		}
	}
}

// BenchmarkAblationConvBackward compares the direct backward loops against
// the GEMM lowering (col2im) for the training path.
func BenchmarkAblationConvBackward(b *testing.B) {
	rng := nn.NewRNG(51)
	c := nn.NewConv2D(rng, "c", 8, 8, 3, 1, 1)
	x := tensor.New(2, 8, 32, 32)
	for i := range x.Data {
		x.Data[i] = float64(i%19) * 0.07
	}
	out := c.Forward(x, true)
	gradOut := tensor.New(out.Shape()...)
	for i := range gradOut.Data {
		gradOut.Data[i] = float64(i%23) * 0.03
	}
	b.Run("Direct", func(b *testing.B) {
		c.Algo = nn.ConvDirect
		for i := 0; i < b.N; i++ {
			nn.ZeroGrads(c)
			c.Backward(gradOut)
		}
	})
	b.Run("Im2colGEMM", func(b *testing.B) {
		c.Algo = nn.ConvGEMM
		for i := 0; i < b.N; i++ {
			nn.ZeroGrads(c)
			nn.Conv2DGEMMBackward(c, x, gradOut)
		}
	})
}

// BenchmarkServeOverload quantifies what admission control buys at 2×
// capacity: goodput (successfully answered requests/s) and the p99
// latency of answered requests, with the shedding queue bounded
// (ShedOn) versus effectively unbounded (ShedOff). Capacity is pinned
// by a deterministic per-batch fault delay, and the offered load is an
// open-loop arrival process at twice that capacity — arrivals do not
// wait for completions, exactly the regime where an unbounded queue
// grows without limit. With shedding on, excess work is refused in
// O(µs) with a typed ErrOverloaded and the admitted tail stays flat;
// with shedding off, every request is admitted and the backlog
// converts overload into p99.
func BenchmarkServeOverload(b *testing.B) {
	const (
		res      = 16
		replicas = 1
		maxBatch = 4
		delay    = 2 * time.Millisecond // per-batch service time floor
		// Capacity is maxBatch requests per delay; arrivals come at 2×.
		interval = delay / (2 * maxBatch * replicas)
	)
	cfg := unet.DefaultConfig(2)
	cfg.Depth = 2
	cfg.BaseFilters = 4
	net := unet.New(cfg)

	run := func(b *testing.B, maxQueue int) {
		eng, err := serve.NewEngine(serve.Config{
			Net:         net,
			Replicas:    replicas,
			MaxBatch:    maxBatch,
			BatchWindow: 200 * time.Microsecond,
			MaxQueue:    maxQueue,
			CacheSize:   -1,
			SlabVoxels:  -1,
			WarmRes:     []int{res},
			Faults:      &serve.Faults{Seed: 7, SlowReplicaProb: 1, ReplicaDelay: delay},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()

		var (
			mu   sync.Mutex
			lat  []time.Duration
			shed int
		)
		b.ResetTimer()
		start := time.Now()
		var wg sync.WaitGroup
		// Absolute-deadline pacing: request k is due at start + k·interval.
		// A coarse sleep overshoots into a burst of catch-up arrivals, but
		// the average offered rate stays pinned at 2× capacity regardless
		// of the host's timer resolution.
		for k := 0; k < b.N; k++ {
			if d := time.Until(start.Add(time.Duration(k) * interval)); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				t0 := time.Now()
				_, err := eng.Solve(context.Background(), benchOmega(k), res)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					lat = append(lat, time.Since(t0))
				case errors.Is(err, serve.ErrOverloaded):
					shed++
				default:
					b.Error(err)
				}
			}(k)
		}
		wg.Wait()
		elapsed := time.Since(start)
		b.StopTimer()

		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		if len(lat) > 0 {
			p99 := lat[(len(lat)*99)/100]
			if p99 >= lat[len(lat)-1] {
				p99 = lat[len(lat)-1]
			}
			b.ReportMetric(float64(p99)/1e6, "p99_ms")
			b.ReportMetric(float64(len(lat))/elapsed.Seconds(), "goodput_rps")
		}
		b.ReportMetric(float64(shed)/float64(b.N), "shed_frac")
	}

	b.Run("ShedOn", func(b *testing.B) { run(b, 2*maxBatch) })
	b.Run("ShedOff", func(b *testing.B) { run(b, 1<<20) })
}
