#!/usr/bin/env bash
# TCP elastic smoke test: three mgtrain processes form a TCP world on
# loopback; one rank is SIGKILL'd mid-run; the survivors must detect the
# death within the heartbeat timeout, reform as a 2-rank world, resume
# from the shared checkpoint, and train to completion.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=${BIN:-/tmp/mgtrain-smoke}
go build -o "$BIN" ./cmd/mgtrain

WORK=$(mktemp -d)
R0=; R1=; R2=
cleanup() {
  for p in $R0 $R1 $R2; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

CK="$WORK/run.ck"
BASE=$((20000 + RANDOM % 20000))
PEERS="127.0.0.1:$BASE,127.0.0.1:$((BASE + 1)),127.0.0.1:$((BASE + 2))"

ARGS=(-dim 2 -strategy half-v -res 16 -levels 1 -samples 8 -batch 4
  -filters 4 -max-epochs 600 -patience 600 -restriction-epochs 1
  -transport tcp -peers "$PEERS" -elastic
  -checkpoint "$CK" -checkpoint-every 1
  -heartbeat-interval 100ms -heartbeat-timeout 1s
  -op-timeout 10s -dial-timeout 20s)

"$BIN" "${ARGS[@]}" -rank 0 >"$WORK/r0.log" 2>&1 &
R0=$!
"$BIN" "${ARGS[@]}" -rank 1 >"$WORK/r1.log" 2>&1 &
R1=$!
"$BIN" "${ARGS[@]}" -rank 2 >"$WORK/r2.log" 2>&1 &
R2=$!

# Wait for the first checkpoint to land, then SIGKILL rank 2 mid-run.
for _ in $(seq 1 100); do
  [ -f "$CK" ] && break
  sleep 0.1
done
[ -f "$CK" ] || { echo "FAIL: no checkpoint appeared"; cat "$WORK"/r*.log; exit 1; }
sleep 0.3
kill -9 "$R2"

fail=0
wait "$R0" || fail=1
wait "$R1" || fail=1
R2_SAVED=$R2
R2=
wait "$R2_SAVED" 2>/dev/null || true
if [ "$fail" -ne 0 ]; then
  echo "FAIL: a surviving rank exited non-zero"
  cat "$WORK/r0.log" "$WORK/r1.log"
  exit 1
fi
for r in r0 r1; do
  grep -q "reforming as rank" "$WORK/$r.log" || {
    echo "FAIL: $r never reformed"; cat "$WORK/$r.log"; exit 1; }
  grep -q "done: final loss" "$WORK/$r.log" || {
    echo "FAIL: $r never finished"; cat "$WORK/$r.log"; exit 1; }
done
echo "tcp elastic smoke OK: rank 2 killed, survivors reformed and finished"
