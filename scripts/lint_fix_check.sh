#!/usr/bin/env bash
# CI guard for `mglint -fix`: copy the deliberately dirty fixture module
# (cmd/mglint/testdata/fixmod, one errflow `err == io.EOF` comparison)
# to a scratch dir, apply fixes through the real binary, and require the
# rewrite to exit clean, be gofmt-clean, and lint clean on a second run.
set -euo pipefail
cd "$(dirname "$0")/.."

go build -o bin/mglint ./cmd/mglint
MGLINT="$PWD/bin/mglint"
FIXTURE="$PWD/cmd/mglint/testdata/fixmod"

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
cp -r "$FIXTURE/." "$work"

cd "$work"
"$MGLINT" -fix ./...

if ! grep -q 'errors.Is(err, io.EOF)' eof/eof.go; then
  echo "lint_fix_check: comparison was not rewritten to errors.Is" >&2
  cat eof/eof.go >&2
  exit 1
fi
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "lint_fix_check: -fix produced non-gofmt output in:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "lint_fix_check: applied diff"
diff -ru "$FIXTURE" . || true

"$MGLINT" ./...
echo "lint_fix_check: ok (rewrite is gofmt-clean and lints clean)"
