#!/usr/bin/env bash
# Overload smoke test: a tiny-capacity mgserve is flooded past its
# admission queue and past a per-client quota. The server must answer
# every refused request with a typed status — 429 + Retry-After for
# quota, 503 + Retry-After for shed work — never a 500, keep serving
# some goodput, and shut down cleanly on SIGTERM.
set -euo pipefail

cd "$(dirname "$0")/.."
TRAIN_BIN=${TRAIN_BIN:-/tmp/mgtrain-overload}
SERVE_BIN=${SERVE_BIN:-/tmp/mgserve-overload}
go build -o "$TRAIN_BIN" ./cmd/mgtrain
go build -o "$SERVE_BIN" ./cmd/mgserve

WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

MODEL="$WORK/model.bin"
"$TRAIN_BIN" -dim 2 -res 16 -levels 1 -samples 2 -batch 2 -max-epochs 1 \
  -o "$MODEL" >"$WORK/train.log" 2>&1

PORT=$((20000 + RANDOM % 20000))
ADDR="127.0.0.1:$PORT"
# Deliberately tiny capacity: one replica, no batching, a 2-deep
# admission queue, no cache (every request is a cold miss), and a
# per-client quota keyed by X-API-Key.
"$SERVE_BIN" -model "$MODEL" -addr "$ADDR" \
  -replicas 1 -max-batch 1 -window 0 -max-queue 2 -cache -1 \
  -quota-rps 1 -quota-burst 2 -quota-header X-API-Key \
  -request-timeout 10s >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$ADDR/healthz" >/dev/null || {
  echo "FAIL: server never became healthy"; cat "$WORK/serve.log"; exit 1; }
curl -sf "http://$ADDR/readyz" >/dev/null || {
  echo "FAIL: idle server not ready"; cat "$WORK/serve.log"; exit 1; }

solve() { # solve <api-key> <omega0> <res> -> "<status>" (headers to $WORK/last-headers.<key>)
  curl -s -o /dev/null -D "$WORK/last-headers.$1" -w '%{http_code}' \
    -H "X-API-Key: $1" -X POST \
    -d "{\"omega\":[$2,1.5386,0.0932,-1.2442],\"res\":$3,\"summary\":true}" \
    "http://$ADDR/solve"
}

# Phase 1 — quota: one client fires 6 back-to-back requests against a
# burst-2 bucket; at least one must be refused 429 with Retry-After.
quota_429=0
for i in $(seq 1 6); do
  code=$(solve alice "0.$i" 16)
  case "$code" in
    200|503) ;;
    429)
      quota_429=$((quota_429 + 1))
      grep -qi '^retry-after:' "$WORK/last-headers.alice" || {
        echo "FAIL: 429 without a Retry-After header"; exit 1; }
      ;;
    *) echo "FAIL: quota phase returned HTTP $code"; cat "$WORK/serve.log"; exit 1 ;;
  esac
done
[ "$quota_429" -ge 1 ] || { echo "FAIL: no 429 from a burst-2 quota"; exit 1; }

# Phase 2 — overload: 24 concurrent cold misses (at a resolution heavy
# enough that each forward takes real time) from distinct clients
# against a 2-deep queue. Some must be served, some must be shed 503
# with Retry-After, and none may surface a 500.
FLOOD_PIDS=()
for i in $(seq 1 24); do
  solve "client$i" "1.$i" 128 >"$WORK/code.$i" &
  FLOOD_PIDS+=("$!")
done
for p in "${FLOOD_PIDS[@]}"; do wait "$p"; done
ok=0; shed=0
for i in $(seq 1 24); do
  code=$(cat "$WORK/code.$i")
  case "$code" in
    200) ok=$((ok + 1)) ;;
    503)
      shed=$((shed + 1))
      grep -qi '^retry-after:' "$WORK/last-headers.client$i" || {
        echo "FAIL: 503 without a Retry-After header"; exit 1; }
      ;;
    429) ;; # a retried connection can trip its own fresh quota; fine
    *) echo "FAIL: overload phase returned HTTP $code"; cat "$WORK/serve.log"; exit 1 ;;
  esac
done
[ "$ok" -ge 1 ] || { echo "FAIL: overload starved all goodput"; exit 1; }
[ "$shed" -ge 1 ] || { echo "FAIL: a 2-deep queue absorbed 24 concurrent misses"; exit 1; }

# The counters must agree with what the clients saw.
stats=$(curl -sf "http://$ADDR/stats")
echo "$stats" | grep -q '"shed":[1-9]' || {
  echo "FAIL: stats shed counter is zero: $stats"; exit 1; }
echo "$stats" | grep -q '"quota_rejected":[1-9]' || {
  echo "FAIL: stats quota_rejected counter is zero: $stats"; exit 1; }

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: server exited non-zero on SIGTERM"; cat "$WORK/serve.log"; exit 1; }
SERVE_PID=
echo "serve overload smoke OK: $ok served, $shed shed 503, $quota_429 quota 429, zero 500s, clean shutdown"
