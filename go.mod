module mgdiffnet

go 1.24
