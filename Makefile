GO ?= go
BENCH_OUT ?= BENCH_pr9.json
MGLINT := bin/mglint

.PHONY: all build vet test race bench ci clean tcp-smoke serve-smoke mglint lint lint-fix lint-fix-check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# mglint is the repo's own go/analysis suite (internal/analysis); it runs
# both standalone and as a go vet -vettool. See DESIGN.md "Static analysis
# & enforced invariants".
mglint:
	$(GO) build -o $(MGLINT) ./cmd/mglint

# lint runs the suite through BOTH drivers and asserts they agree: the
# standalone loader (-json, one diagnostic per line, waived findings
# included with suppressed=true) and the go vet vettool protocol push
# facts through different plumbing (in-process maps vs gob vetx files),
# so a pass certifies both paths saw the same set of unsuppressed
# findings — zero, or lint fails with the findings printed.
lint: mglint
	@set -e; \
	json=$$(mktemp); vet=$$(mktemp); trap 'rm -f "$$json" "$$vet"' EXIT; \
	echo "mglint standalone (-json)"; \
	./$(MGLINT) -json ./... >"$$json" || { cat "$$json"; exit 1; }; \
	echo "mglint vettool (go vet protocol)"; \
	$(GO) vet -vettool=$(MGLINT) ./... 2>"$$vet" || { cat "$$vet"; exit 1; }; \
	a=$$(grep -c '"suppressed":false' "$$json" || true); \
	b=$$(grep -cE '\.go:[0-9]+' "$$vet" || true); \
	if [ "$$a" != "$$b" ]; then \
	  echo "mglint drivers disagree: standalone reported $$a findings, vettool $$b"; \
	  cat "$$json" "$$vet"; exit 1; \
	fi
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt -l found unformatted files:"; echo "$$out"; exit 1; fi

# lint-fix applies every suggested fix (errflow rewrites to errors.Is,
# errors-import insertion, ...) in place; waived findings are left alone.
lint-fix: mglint
	./$(MGLINT) -fix ./...

# lint-fix-check proves -fix on a deliberately dirty fixture produces a
# gofmt-clean tree that lints clean on re-run (CI runs this).
lint-fix-check: mglint
	./scripts/lint_fix_check.sh

race:
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/nn/ ./internal/tensor/ ./internal/dist/ ./internal/serve/

ci: lint test

# Elastic fault-tolerance smoke: 3-rank TCP world on loopback, one rank
# SIGKILL'd mid-run, survivors reform and finish from the checkpoint.
tcp-smoke:
	./scripts/tcp_smoke.sh

# Overload smoke: a tiny-capacity mgserve is flooded past its admission
# queue and a per-client quota; every refusal must be typed (429/503 +
# Retry-After, never a 500) and SIGTERM must shut down cleanly.
serve-smoke:
	./scripts/serve_overload_smoke.sh

# Run the strong-scaling benchmarks (Figure 9: allreduce ablation +
# data-parallel epoch sweep), the bucketed comm/compute-overlap ablation,
# the 2D/3D direct-vs-GEMM lowering ablations, the distributed Half-V
# stage (multigrid schedule through the data-parallel backend), and the
# serving-throughput acceptance bench (batched engine vs sequential
# per-request forwards), and the serving-overload bench (goodput/p99
# with the shedding queue bounded vs unbounded at 2× capacity), and
# save them as JSON to extend the perf trajectory; the raw
# `go test -bench` text is kept alongside.
bench:
	$(GO) test -run '^$$' -bench 'Figure9|BucketedAllreduceOverlap|AblationConv|DistHalfVStage|ServeThroughput|ServeOverload' -benchmem -timeout 30m . | tee BENCH_raw.txt
	awk 'BEGIN { print "[" } \
	  /^Benchmark/ { \
	    if (n++) printf(",\n"); \
	    printf("  {\"name\":\"%s\",\"iters\":%s,\"ns_per_op\":%s", $$1, $$2, $$3); \
	    for (i = 5; i < NF; i += 2) { \
	      key = $$(i+1); gsub(/[\/%]/, "_per_", key); \
	      printf(",\"%s\":%s", key, $$i); \
	    } \
	    printf("}"); \
	  } \
	  END { print "\n]" }' BENCH_raw.txt > $(BENCH_OUT)

clean:
	rm -f BENCH_raw.txt
