// Poisson2D: the paper's motivating workload — a neural surrogate for a
// *family* of 2D generalized Poisson problems −∇·(ν(x;ω)∇u)=0. One
// network, trained once with the multigrid schedule, answers any ω in the
// sampled range; this example evaluates it on the anecdotal parameter
// vectors from the paper's Tables 4 and 7 and renders ASCII heatmaps of
// the fields.
//
// Run with: go run ./examples/poisson2d
package main

import (
	"fmt"
	"strings"

	"mgdiffnet/internal/core"
	"mgdiffnet/internal/fem"
	"mgdiffnet/internal/field"
	"mgdiffnet/internal/tensor"
	"mgdiffnet/internal/unet"
)

const res = 32

// heatmap renders a [res,res] field as an ASCII intensity plot.
func heatmap(f *tensor.Tensor, title string) string {
	shades := []rune(" .:-=+*#%@")
	lo, hi := f.Min(), f.Max()
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.3f, %.3f]\n", title, lo, hi)
	step := f.Dim(0) / 16
	if step < 1 {
		step = 1
	}
	for iy := 0; iy < f.Dim(0); iy += step {
		for ix := 0; ix < f.Dim(1); ix += step {
			v := (f.At(iy, ix) - lo) / span
			idx := int(v * float64(len(shades)-1))
			b.WriteRune(shades[idx])
			b.WriteRune(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func main() {
	ncfg := unet.DefaultConfig(2)
	ncfg.BaseFilters = 8

	cfg := core.Config{
		Dim: 2, Strategy: core.HalfV, Levels: 2, FinestRes: res,
		Samples: 32, BatchSize: 8, LR: 2e-3,
		RestrictionEpochs: 1, MaxEpochsPerStage: 20, Patience: 3, MinDelta: 1e-5,
		Seed: 7, Net: &ncfg,
	}
	fmt.Println("training the parametric Poisson surrogate (one network, all ω)…")
	tr := core.NewTrainer(cfg)
	rep := tr.Run()
	fmt.Printf("trained in %.1fs, loss %.5f\n\n", rep.TotalSeconds, rep.FinalLoss)

	omegas := []field.Omega{
		{0.6681, 1.5354, 0.7644, -2.9709},  // Table 4, row 1
		{1.3821, 2.5508, 0.1750, 2.1269},   // Table 4, row 2
		{0.0293, -2.0943, 0.1386, -2.3271}, // Table 7, row 3
	}

	fmt.Printf("%-36s %-10s %-10s %-10s\n", "omega", "RMSE", "max|err|", "rel L2")
	for _, w := range omegas {
		uNN := tr.Predict(w, res)
		uFEM, _ := fem.Solve2D(field.Raster2D(w, res), 1e-10, 20000)
		diff := uNN.Clone()
		diff.Sub(uFEM)
		fmt.Printf("(%7.4f %7.4f %7.4f %7.4f) %-10.5f %-10.5f %-10.5f\n",
			w[0], w[1], w[2], w[3], uNN.RMSE(uFEM), diff.AbsMax(), diff.Norm2()/uFEM.Norm2())
	}
	fmt.Println()

	// Visualize the first case like the paper's field plots.
	w := omegas[0]
	nu := field.Raster2D(w, res)
	uNN := tr.Predict(w, res)
	uFEM, _ := fem.Solve2D(nu, 1e-10, 20000)
	fmt.Println(heatmap(nu, "diffusivity ν(x; ω)"))
	fmt.Println(heatmap(uNN, "u_MGDiffNet"))
	fmt.Println(heatmap(uFEM, "u_FEM"))
}
