// Scaling3D: the paper's distributed story at reproduction scale. Train a
// 3D DiffNet with data-parallel workers connected by a real ring-allreduce
// (goroutines standing in for MPI ranks), verify the worker-count
// independence guarantee (Eq. 15), measure the in-process strong scaling,
// and project the paper's 256³/512 GPU and 512³/128 node studies with the
// Table 6 cluster model.
//
// Run with: go run ./examples/scaling3d
package main

import (
	"fmt"
	"runtime"

	"mgdiffnet/internal/dist"
	"mgdiffnet/internal/experiments"
	"mgdiffnet/internal/unet"
)

func main() {
	fmt.Println("== measured in-process strong scaling (3D, ring allreduce)")
	const res, samples, batch = 16, 8, 4
	maxW := runtime.GOMAXPROCS(0)
	if maxW > 4 {
		maxW = 4
	}
	var baseSec float64
	for p := 1; p <= maxW; p *= 2 {
		net := unet.DefaultConfig(3)
		net.BaseFilters = 4
		net.BatchNorm = false
		cfg := dist.ParallelConfig{
			Workers: p, Dim: 3, Res: res,
			Samples: samples, GlobalBatch: batch, LR: 1e-3, Seed: 3, Net: &net,
		}
		pt, err := dist.NewParallelTrainer(cfg)
		if err != nil {
			panic(err)
		}
		pt.TimeEpoch(res) // warm-up; TrainEpoch throttles kernels to GOMAXPROCS/p
		dur, loss, err := pt.TimeEpoch(res)
		if err != nil {
			panic(err)
		}
		div := pt.MaxReplicaDivergence()
		pt.Close()
		sec := dur.Seconds()
		if p == 1 {
			baseSec = sec
		}
		fmt.Printf("  p=%d: epoch %.3fs, speedup %.2fx, loss %.5f, replica divergence %g\n",
			p, sec, baseSec/sec, loss, div)
	}

	fmt.Println("\n== projected: Figure 9 (Azure NDv2, 256^3) and Figure 10 (Bridges2, 512^3)")
	r9, err := experiments.Figure9(experiments.Quick)
	if err != nil {
		panic(err)
	}
	fmt.Print(experiments.FormatFigure9(r9))
	fmt.Println()
	fmt.Print(experiments.FormatFigure10(experiments.Figure10(experiments.Quick)))
}
