// FEMCompare: the traditional-solver side of the paper. Solve the same
// variable-coefficient Poisson problem with conjugate gradients and with
// all four geometric-multigrid cycles of Figure 3, and reproduce the §4.3
// observation that a trained network's forward pass beats a fresh FEM
// solve.
//
// Run with: go run ./examples/femcompare
package main

import (
	"fmt"
	"time"

	"mgdiffnet/internal/experiments"
	"mgdiffnet/internal/fem"
	"mgdiffnet/internal/field"
	"mgdiffnet/internal/gmg"
)

func main() {
	const res = 65 // 2^6+1 nodes: GMG-friendly
	w := field.Omega{0.3105, 1.5386, 0.0932, -1.2442}
	nu := field.Raster2D(w, res)

	fmt.Printf("solving -div(nu grad u)=0 at %dx%d for omega %v\n\n", res, res, w)

	start := time.Now()
	uCG, cg := fem.Solve2D(nu, 1e-9, 50000)
	cgSec := time.Since(start).Seconds()
	fmt.Printf("%-16s %6d iterations   %8.4fs   residual %.2e\n", "CG", cg.Iterations, cgSec, cg.Residual)

	for _, ct := range []gmg.CycleType{gmg.VCycle, gmg.WCycle, gmg.FCycle, gmg.HalfVCycle} {
		start = time.Now()
		u, st := gmg.NewSolver2D(nu, gmg.Options{Cycle: ct, Tol: 1e-9}).Solve()
		sec := time.Since(start).Seconds()
		fmt.Printf("GMG %-12s %6d cycles       %8.4fs   residual %.2e   vs CG RMSE %.2e\n",
			ct.String()+"-cycle", st.Cycles, sec, st.Residual, u.RMSE(uCG))
	}

	fmt.Println("\n== section 4.3: inference vs solve")
	fmt.Print(experiments.FormatTiming(experiments.InferenceVsFEM(experiments.Quick)))
}
