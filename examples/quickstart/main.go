// Quickstart: train a small 2D MGDiffNet with the paper's best schedule
// (Half-V cycle), predict a full solution field for an unseen diffusivity
// map, and compare it against the traditional FEM solve.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"mgdiffnet/internal/core"
	"mgdiffnet/internal/fem"
	"mgdiffnet/internal/field"
	"mgdiffnet/internal/unet"
)

func main() {
	// A small network and dataset keep this under a minute on a laptop;
	// scale FinestRes/Samples/BaseFilters up toward the paper's sizes.
	ncfg := unet.DefaultConfig(2)
	ncfg.BaseFilters = 8

	cfg := core.Config{
		Dim:               2,
		Strategy:          core.HalfV, // the paper's winner (Table 1)
		Levels:            3,
		FinestRes:         32,
		Samples:           16,
		BatchSize:         4,
		LR:                2e-3,
		RestrictionEpochs: 1,
		MaxEpochsPerStage: 15,
		Patience:          3,
		MinDelta:          1e-5,
		Seed:              42,
		Net:               &ncfg,
		Logf: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	}

	fmt.Println("training MGDiffNet (Half-V cycle, 3 levels, finest 32x32)…")
	tr := core.NewTrainer(cfg)
	rep := tr.Run()
	fmt.Printf("trained in %.1fs, final energy loss %.5f\n\n", rep.TotalSeconds, rep.FinalLoss)

	// Predict for the ω the paper visualizes in its Table 3.
	w := field.Omega{0.3105, 1.5386, 0.0932, -1.2442}
	uNN := tr.Predict(w, 32)

	// FEM reference on the same grid.
	uFEM, cg := fem.Solve2D(field.Raster2D(w, 32), 1e-10, 20000)
	fmt.Printf("FEM reference solved in %d CG iterations\n", cg.Iterations)

	diff := uNN.Clone()
	diff.Sub(uFEM)
	fmt.Printf("u_MGDiffNet vs u_FEM: RMSE %.5f, max|err| %.5f\n", uNN.RMSE(uFEM), diff.AbsMax())

	// The trained network is fully convolutional: the same weights predict
	// at a finer grid, acting as the multigrid prolongation.
	u64 := tr.Predict(w, 64)
	fmt.Printf("same weights at 64x64: u in [%.3f, %.3f] (free prolongation)\n", u64.Min(), u64.Max())
}
