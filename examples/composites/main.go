// Composites: thermal transport through a particulate composite — one of
// the applications the paper's conclusion targets ("thermal transport in
// composites — all of which are defined by Equation 3"). The same MGDiffNet
// machinery trains on two-phase inclusion microstructures instead of the
// log-permeability family: the variational loss never needed labels or a
// particular coefficient parameterization, so swapping the data source is
// the only change.
//
// Run with: go run ./examples/composites
package main

import (
	"fmt"

	"mgdiffnet/internal/core"
	"mgdiffnet/internal/fem"
	"mgdiffnet/internal/field"
	"mgdiffnet/internal/unet"
	"mgdiffnet/internal/vtkio"
)

const res = 32

func main() {
	// A family of random particulate microstructures: conductivity 1
	// matrix, conductivity-8 particles.
	data := field.NewInclusionDataset(11, 16, 2, 6, 0.06, 0.14, 1, 8)

	ncfg := unet.DefaultConfig(2)
	ncfg.BaseFilters = 8

	cfg := core.Config{
		Dim: 2, Strategy: core.HalfV, Levels: 2, FinestRes: res,
		Samples: data.Len(), BatchSize: 4, LR: 2e-3,
		RestrictionEpochs: 1, MaxEpochsPerStage: 15, Patience: 3, MinDelta: 1e-5,
		Seed: 5, Net: &ncfg, Data: data,
	}
	fmt.Println("training the composite thermal surrogate (Half-V cycle)…")
	tr := core.NewTrainer(cfg)
	rep := tr.Run()
	fmt.Printf("trained in %.1fs, final energy loss %.5f\n\n", rep.TotalSeconds, rep.FinalLoss)

	// Evaluate on a fresh microstructure the network never saw.
	held := field.NewInclusionDataset(99, 1, 2, 6, 0.06, 0.14, 1, 8)
	nuBatch := held.Batch(0, 1, res)
	uBatch := tr.PredictField(nuBatch)

	nu := held.Composites[0].Raster2D(res)
	uFEM, cg := fem.Solve2D(nu, 1e-10, 20000)
	fmt.Printf("held-out microstructure: volume fraction %.3f, FEM in %d CG iterations\n",
		held.Composites[0].VolumeFraction(2, 101), cg.Iterations)

	uNN := uBatch.Reshape(res, res)
	diff := uNN.Clone()
	diff.Sub(uFEM)
	fmt.Printf("u_MGDiffNet vs u_FEM: RMSE %.5f, max|err| %.5f\n", uNN.RMSE(uFEM), diff.AbsMax())

	// Export for ParaView, as the paper's pipeline would.
	out := "composite.vti"
	err := vtkio.WriteFile(out, []vtkio.Field{
		{Name: "conductivity", Data: nu},
		{Name: "u_mgdiffnet", Data: uNN},
		{Name: "u_fem", Data: uFEM},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("fields written to %s (VTK ImageData, zlib-compressed)\n", out)
}
