// Inverse: the paper's motivating use case (§1) — computational design
// optimization, where "hundreds (or thousands) of simulations are necessary
// to obtain an optimal design, making it computationally expensive or
// impractical to use traditional scientific simulators". A trained
// MGDiffNet answers each candidate ω in milliseconds, so a brute search
// over the parameter space that would need thousands of FEM solves runs in
// seconds: recover the hidden ω* behind an observed solution field.
//
// Run with: go run ./examples/inverse
package main

import (
	"fmt"
	"time"

	"mgdiffnet/internal/core"
	"mgdiffnet/internal/fem"
	"mgdiffnet/internal/field"
	"mgdiffnet/internal/tensor"
	"mgdiffnet/internal/unet"
)

const res = 32

func main() {
	// 1. Train the surrogate once (amortized across every query below).
	ncfg := unet.DefaultConfig(2)
	ncfg.BaseFilters = 8
	cfg := core.Config{
		Dim: 2, Strategy: core.HalfV, Levels: 2, FinestRes: res,
		Samples: 32, BatchSize: 8, LR: 2e-3,
		RestrictionEpochs: 1, MaxEpochsPerStage: 15, Patience: 3, MinDelta: 1e-5,
		Seed: 21, Net: &ncfg,
	}
	fmt.Println("training the surrogate once…")
	tr := core.NewTrainer(cfg)
	rep := tr.Run()
	fmt.Printf("trained in %.1fs (loss %.4f)\n\n", rep.TotalSeconds, rep.FinalLoss)

	// 2. A hidden design produced an observed field (here: the FEM solution
	// for a secret ω*, as a stand-in for sparse sensor data).
	hidden := field.Omega{1.25, -0.80, 0.60, -2.10}
	target, _ := fem.Solve2D(field.Raster2D(hidden, res), 1e-10, 20000)
	fmt.Printf("hidden design: ω* = (%.2f, %.2f, %.2f, %.2f)\n", hidden[0], hidden[1], hidden[2], hidden[3])

	mismatch := func(u *tensor.Tensor) float64 { return u.RMSE(target) }

	// 3. Inverse search: Sobol coarse sweep over [-3,3]^4, then local
	// coordinate refinement — every candidate evaluated by the surrogate.
	start := time.Now()
	evals := 0
	best := field.Omega{}
	bestErr := 1e300

	sob := field.NewSobol(field.OmegaDim)
	const sweep = 512
	for k := 0; k < sweep; k++ {
		p := sob.Next()
		var w field.Omega
		for i := range w {
			w[i] = -3 + 6*p[i]
		}
		e := mismatch(tr.Predict(w, res))
		evals++
		if e < bestErr {
			bestErr, best = e, w
		}
	}
	// Coordinate refinement with shrinking steps.
	for _, step := range []float64{0.5, 0.2, 0.08, 0.03} {
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < field.OmegaDim; i++ {
				for _, dir := range []float64{-1, 1} {
					cand := best
					cand[i] += dir * step
					if cand[i] < -3 || cand[i] > 3 {
						continue
					}
					e := mismatch(tr.Predict(cand, res))
					evals++
					if e < bestErr {
						bestErr, best = e, cand
					}
				}
			}
		}
	}
	searchSec := time.Since(start).Seconds()

	fmt.Printf("recovered:     ω̂ = (%.2f, %.2f, %.2f, %.2f)\n", best[0], best[1], best[2], best[3])
	fmt.Printf("field mismatch (surrogate): %.5f after %d evaluations in %.1fs\n", bestErr, evals, searchSec)

	// 4. Validate the recovered design with one real FEM solve, and show
	// what the same search would have cost with FEM in the loop.
	uCheck, _ := fem.Solve2D(field.Raster2D(best, res), 1e-10, 20000)
	fmt.Printf("field mismatch (FEM check): %.5f\n", uCheck.RMSE(target))

	femStart := time.Now()
	fem.Solve2D(field.Raster2D(best, res), 1e-10, 20000)
	femOne := time.Since(femStart).Seconds()
	fmt.Printf("\namortization: %d surrogate evals took %.1fs; the same search with FEM would take ≈%.0fs (%d × %.3fs/solve)\n",
		evals, searchSec, float64(evals)*femOne, evals, femOne)
}
