// Package mgdiffnet is a from-scratch Go reproduction of "Distributed
// multigrid neural solvers on megavoxel domains" (SC 2021,
// arXiv:2104.14538): a fully convolutional U-Net trained as a neural PDE
// solver for the generalized 3D Poisson equation with a variational FEM
// loss, multigrid-inspired training schedules (V/W/F/Half-V cycles over
// input resolutions), and data-parallel distributed training with
// ring-allreduce gradient averaging.
//
// The public surface lives under internal/ packages wired together by the
// commands in cmd/ and the runnable examples in examples/; see README.md
// for a map and DESIGN.md for the paper-to-module inventory. The root
// package exists to host the repository-level benchmark suite
// (bench_test.go), which regenerates every table and figure of the paper's
// evaluation.
package mgdiffnet
