// mglint runs the repo's project-specific static analyzers — the
// determinism, hot-path-allocation and error-handling invariants that
// after-the-fact tests used to guard one instance at a time.
//
// Two modes share one analyzer suite (internal/analysis/all):
//
//	mglint [-only name,name] [packages]
//	    standalone: load packages (default ./...) through `go list
//	    -export` and report every unsuppressed diagnostic. Exit 1 if any.
//
//	go vet -vettool=$(which mglint) ./...
//	    vettool: the go command probes -flags and -V=full, then invokes
//	    mglint once per build unit with a vet.cfg JSON file. Diagnostics
//	    go to stderr as file:line:col: messages with exit status 2,
//	    exactly like the bundled vet.
//
// Suppressions: //mglint:ignore <analyzer> <reason> (line) and
// //mglint:ignore-file <analyzer> <reason> (file). The reason is
// mandatory; a bare ignore is itself a diagnostic.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mgdiffnet/internal/analysis"
	"mgdiffnet/internal/analysis/all"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go vet protocol probes come before flag parsing: the argument
	// forms are fixed by cmd/go, not by this tool.
	for _, a := range args {
		switch {
		case a == "-flags":
			return printFlags()
		case strings.HasPrefix(a, "-V="):
			return printVersion()
		}
	}
	fs := flag.NewFlagSet("mglint", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnit(rest[0], analyzers)
	}
	return runStandalone(rest, analyzers)
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	suite := all.Analyzers()
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("mglint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func runStandalone(patterns []string, analyzers []*analysis.Analyzer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		// Packages share one FileSet per Load, so any package resolves it.
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pkgs[0].Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 1
}

func runUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	pkg, cfg, err := analysis.LoadUnit(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if cfg != nil {
		if err := cfg.WriteVetx(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if pkg == nil {
		return 0 // out-of-module dependency unit: nothing to check
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2 // the go command's "diagnostics reported" status
}

// printFlags answers the go command's -flags probe: the JSON schema of
// flags the tool accepts, so `go vet -vettool=mglint -only=...` works.
func printFlags() int {
	fmt.Println(`[{"Name":"only","Bool":false,"Usage":"comma-separated analyzer names to run"}]`)
	return 0
}

// printVersion answers -V=full. The output is the go command's cache key
// for vet results, so it must change whenever the binary does: hash the
// executable itself.
func printVersion() int {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			if err := f.Close(); err != nil {
				id = "unknown"
			}
		}
	}
	fmt.Printf("mglint version devel buildID=%s\n", id)
	return 0
}
