// mglint runs the repo's project-specific static analyzers — the
// determinism, hot-path-allocation, error-handling and lock-discipline
// invariants that after-the-fact tests used to guard one instance at a
// time.
//
// Two modes share one analyzer suite (internal/analysis/all):
//
//	mglint [-only name,...] [-exclude name,...] [-json] [-fix] [packages]
//	    standalone: load packages (default ./...) through `go list
//	    -export`, schedule them in dependency order so cross-package
//	    facts flow, and report every unsuppressed diagnostic. Exit 1 if
//	    any. -fix applies the preferred suggested fix of every
//	    unsuppressed diagnostic that carries one (gofmt-clean, refusing
//	    suppressed or conflicting edits) and reports only what remains.
//
//	go vet -vettool=$(which mglint) ./...
//	    vettool: the go command probes -flags and -V=full, then invokes
//	    mglint once per build unit with a vet.cfg JSON file. Dependency
//	    facts arrive through the config's PackageVetx files and the
//	    unit's own facts are written to VetxOutput, so analyzer behavior
//	    is identical to standalone. Diagnostics go to stderr as
//	    file:line:col: messages with exit status 2, exactly like the
//	    bundled vet.
//
// With -json each diagnostic is emitted to stdout as one JSON object per
// line — {"path","line","analyzer","message","suppressed"} — including
// waived diagnostics with suppressed=true, so CI and editors can consume
// the full picture without re-parsing positions. Exit status still
// reflects only unsuppressed findings.
//
// Suppressions: //mglint:ignore <analyzer> <reason> (line) and
// //mglint:ignore-file <analyzer> <reason> (file). The reason is
// mandatory; a bare ignore is itself a diagnostic.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"mgdiffnet/internal/analysis"
	"mgdiffnet/internal/analysis/all"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The go vet protocol probes come before flag parsing: the argument
	// forms are fixed by cmd/go, not by this tool.
	for _, a := range args {
		switch {
		case a == "-flags":
			return printFlags(stdout)
		case strings.HasPrefix(a, "-V="):
			return printVersion(stdout)
		}
	}
	fs := flag.NewFlagSet("mglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	exclude := fs.String("exclude", "", "comma-separated analyzer names to skip")
	jsonOut := fs.Bool("json", false, "emit one JSON diagnostic per line on stdout (includes suppressed)")
	fix := fs.Bool("fix", false, "apply suggested fixes in place (standalone mode only)")
	fs.Usage = func() {
		fmt.Fprint(stderr, usage)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // the user asked for the usage text; that's not an error
		}
		return 2
	}
	analyzers, err := selectAnalyzers(*only, *exclude)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		if *fix {
			// The vet protocol gives no way to rewrite sources mid-build,
			// and go vet would cache the unit as analyzed anyway.
			fmt.Fprintln(stderr, "mglint: -fix is not supported in vettool mode")
			return 2
		}
		return runUnit(rest[0], analyzers, *jsonOut, stdout, stderr)
	}
	return runStandalone(rest, analyzers, *jsonOut, *fix, stdout, stderr)
}

const usage = `usage: mglint [flags] [packages]
       go vet -vettool=mglint [packages]

Analyzers: ` + "`mglint -only=`" + ` with an unknown name lists valid ones.

Exit codes, standalone mode:
    0  no unsuppressed diagnostics (waived-only counts as clean)
    1  unsuppressed diagnostics reported (after fixes, with -fix)
    2  usage, load, or fix-application error

Exit codes, vettool mode (per build unit, matching cmd/vet):
    0  clean
    2  diagnostics reported, or an internal error

Flags:
`

func selectAnalyzers(only, exclude string) ([]*analysis.Analyzer, error) {
	suite := all.Analyzers()
	byName := make(map[string]*analysis.Analyzer)
	var names []string
	for _, a := range suite {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	unknown := func(name string) error {
		return fmt.Errorf("mglint: unknown analyzer %q (valid: %s)", name, strings.Join(names, ", "))
	}
	excluded := make(map[string]bool)
	if exclude != "" {
		for _, name := range strings.Split(exclude, ",") {
			name = strings.TrimSpace(name)
			if _, ok := byName[name]; !ok {
				return nil, unknown(name)
			}
			excluded[name] = true
		}
	}
	selected := suite
	if only != "" {
		selected = nil
		for _, name := range strings.Split(only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				return nil, unknown(name)
			}
			selected = append(selected, a)
		}
	}
	var out []*analysis.Analyzer
	for _, a := range selected {
		if !excluded[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mglint: -only/-exclude selected no analyzers")
	}
	return out, nil
}

// jsonDiag is the one-per-line wire form of -json output.
type jsonDiag struct {
	Path       string    `json:"path"`
	Line       int       `json:"line"`
	Analyzer   string    `json:"analyzer"`
	Message    string    `json:"message"`
	Suppressed bool      `json:"suppressed"`
	Fixes      []jsonFix `json:"fixes,omitempty"`
}

// jsonFix mirrors analysis.SuggestedFix with byte-offset edits, so
// editors can apply a rewrite without reparsing positions.
type jsonFix struct {
	Message string     `json:"message"`
	Edits   []jsonEdit `json:"edits"`
}

type jsonEdit struct {
	Path    string `json:"path"`
	Start   int    `json:"start"` // byte offset, inclusive
	End     int    `json:"end"`   // byte offset, exclusive
	NewText string `json:"new_text"`
}

func jsonFixes(fset *token.FileSet, d analysis.Diagnostic) []jsonFix {
	var out []jsonFix
	for _, f := range d.SuggestedFixes {
		jf := jsonFix{Message: f.Message}
		for _, e := range f.TextEdits {
			start := fset.Position(e.Pos)
			end := start.Offset
			if e.End.IsValid() {
				end = fset.Position(e.End).Offset
			}
			jf.Edits = append(jf.Edits, jsonEdit{
				Path:    start.Filename,
				Start:   start.Offset,
				End:     end,
				NewText: string(e.NewText),
			})
		}
		out = append(out, jf)
	}
	return out
}

// emit prints diagnostics in the selected format and returns the count of
// unsuppressed ones, which is what exit status is based on.
func emit(fset *token.FileSet, diags []analysis.Diagnostic, jsonOut bool, stdout, stderr io.Writer) int {
	unsuppressed := 0
	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		if !d.Suppressed {
			unsuppressed++
		}
		if jsonOut {
			pos := fset.Position(d.Pos)
			// Encode never fails for this shape; one object per line is
			// the contract.
			_ = enc.Encode(jsonDiag{
				Path:       pos.Filename,
				Line:       pos.Line,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
				Fixes:      jsonFixes(fset, d),
			})
		} else if !d.Suppressed {
			fmt.Fprintf(stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	return unsuppressed
}

func runStandalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut, fix bool, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// Packages share one FileSet per Load, so any package resolves positions.
	fset := pkgs[0].Fset
	if fix {
		fixed, err := analysis.ApplyFixes(fset, diags)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for file, content := range fixed {
			if err := os.WriteFile(file, content, 0o644); err != nil {
				fmt.Fprintln(stderr, "mglint:", err)
				return 2
			}
			fmt.Fprintf(stderr, "mglint: fixed %s\n", file)
		}
		// Report only what -fix could not resolve; the rewritten
		// occurrences are gone from the tree, so re-reporting them would
		// just restate the diff.
		var remaining []analysis.Diagnostic
		for _, d := range diags {
			if d.Suppressed || len(d.SuggestedFixes) == 0 {
				remaining = append(remaining, d)
			}
		}
		diags = remaining
	}
	if emit(fset, diags, jsonOut, stdout, stderr) > 0 {
		return 1
	}
	return 0
}

func runUnit(cfgPath string, analyzers []*analysis.Analyzer, jsonOut bool, stdout, stderr io.Writer) int {
	diags, pkg, err := analysis.RunUnit(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if pkg == nil || len(diags) == 0 {
		return 0 // out-of-module unit, facts-only unit, or clean
	}
	if emit(pkg.Fset, diags, jsonOut, stdout, stderr) > 0 {
		return 2 // the go command's "diagnostics reported" status
	}
	return 0
}

// printFlags answers the go command's -flags probe: the JSON schema of
// flags the tool accepts, so `go vet -vettool=mglint -only=...` works.
func printFlags(stdout io.Writer) int {
	// -fix is deliberately absent: go vet then refuses to forward it,
	// which is the behavior we want (fixes only make sense standalone).
	fmt.Fprintln(stdout, `[{"Name":"only","Bool":false,"Usage":"comma-separated analyzer names to run"},{"Name":"exclude","Bool":false,"Usage":"comma-separated analyzer names to skip"},{"Name":"json","Bool":true,"Usage":"emit one JSON diagnostic per line on stdout"}]`)
	return 0
}

// printVersion answers -V=full. The output is the go command's cache key
// for vet results, so it must change whenever the binary does: hash the
// executable itself.
func printVersion(stdout io.Writer) int {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			if err := f.Close(); err != nil {
				id = "unknown"
			}
		}
	}
	fmt.Fprintf(stdout, "mglint version devel buildID=%s\n", id)
	return 0
}
