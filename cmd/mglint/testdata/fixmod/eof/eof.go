// Package eof carries one errflow finding with a suggested fix: the
// -fix tests copy this module to a temp dir, apply the rewrite, and
// assert the result is gofmt-clean and lints clean.
package eof

import (
	"io"
)

// AtEOF compares a possibly-wrapped error with ==.
func AtEOF(err error) bool {
	return err == io.EOF
}
