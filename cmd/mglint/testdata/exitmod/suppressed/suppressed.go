// Package suppressed carries the same closecheck finding as dirty, but
// waived: exit status must be clean while -json still reports it.
package suppressed

import "os"

// Save defers Close on a write handle, with a reasoned waiver.
func Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//mglint:ignore closecheck scratch file is re-read and verified by the caller, a lost final write is detected there
	defer f.Close()
	_, err = f.WriteString("x")
	return err
}
