module exitmod

go 1.24
