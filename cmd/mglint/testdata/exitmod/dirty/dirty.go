// Package dirty carries one unsuppressed closecheck finding.
package dirty

import "os"

// Save defers Close on a write handle without checking its error.
func Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString("x")
	return err
}
