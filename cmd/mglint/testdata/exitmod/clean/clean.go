// Package clean has nothing for any analyzer to object to.
package clean

// Double is steady-state arithmetic: no clocks, no allocation, no handles.
func Double(x int) int {
	return 2 * x
}
