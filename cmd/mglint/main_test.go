package main

import (
	"bytes"
	"encoding/json"
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runIn invokes run with the working directory set to the exitmod
// fixture, capturing both streams.
func runIn(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "exitmod"))
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(abs)
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestExitCodes pins the standalone exit-status contract: 0 for clean
// and suppressed-only packages, 1 for unsuppressed diagnostics, 2 for
// load or usage errors.
func TestExitCodes(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		code, stdout, stderr := runIn(t, "./clean")
		if code != 0 {
			t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
		}
		if stdout != "" || stderr != "" {
			t.Fatalf("clean run produced output: stdout=%q stderr=%q", stdout, stderr)
		}
	})
	t.Run("dirty", func(t *testing.T) {
		code, _, stderr := runIn(t, "./dirty")
		if code != 1 {
			t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
		}
		if !strings.Contains(stderr, "closecheck") {
			t.Fatalf("stderr missing analyzer name:\n%s", stderr)
		}
		if !strings.Contains(stderr, "dirty.go:") {
			t.Fatalf("stderr missing position:\n%s", stderr)
		}
	})
	t.Run("suppressed", func(t *testing.T) {
		code, stdout, stderr := runIn(t, "./suppressed")
		if code != 0 {
			t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
		}
		if stdout != "" || stderr != "" {
			t.Fatalf("suppressed-only run produced output: stdout=%q stderr=%q", stdout, stderr)
		}
	})
	t.Run("load error", func(t *testing.T) {
		code, _, stderr := runIn(t, "./no/such/pkg")
		if code != 2 {
			t.Fatalf("exit %d, want 2; stderr:\n%s", code, stderr)
		}
	})
	t.Run("unknown analyzer", func(t *testing.T) {
		code, _, stderr := runIn(t, "-only", "nosuchpass", "./clean")
		if code != 2 {
			t.Fatalf("exit %d, want 2", code)
		}
		if !strings.Contains(stderr, "unknown analyzer") {
			t.Fatalf("stderr missing unknown-analyzer error:\n%s", stderr)
		}
	})
}

// TestJSONOutput pins the -json contract: one JSON object per line on
// stdout, suppressed diagnostics included with suppressed=true, exit
// status still driven only by unsuppressed findings.
func TestJSONOutput(t *testing.T) {
	t.Run("dirty", func(t *testing.T) {
		code, stdout, _ := runIn(t, "-json", "./dirty")
		if code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
		diags := decodeLines(t, stdout)
		if len(diags) != 1 {
			t.Fatalf("got %d diagnostics, want 1:\n%s", len(diags), stdout)
		}
		d := diags[0]
		if d.Analyzer != "closecheck" || d.Suppressed || d.Line == 0 {
			t.Fatalf("unexpected diagnostic: %+v", d)
		}
		if filepath.Base(d.Path) != "dirty.go" {
			t.Fatalf("path %q, want .../dirty.go", d.Path)
		}
		if !strings.Contains(d.Message, "Close") {
			t.Fatalf("message %q missing Close", d.Message)
		}
	})
	t.Run("suppressed", func(t *testing.T) {
		code, stdout, _ := runIn(t, "-json", "./suppressed")
		if code != 0 {
			t.Fatalf("exit %d, want 0 for suppressed-only", code)
		}
		diags := decodeLines(t, stdout)
		if len(diags) != 1 {
			t.Fatalf("got %d diagnostics, want 1 (the waived one):\n%s", len(diags), stdout)
		}
		if !diags[0].Suppressed {
			t.Fatalf("diagnostic not marked suppressed: %+v", diags[0])
		}
	})
	t.Run("clean", func(t *testing.T) {
		code, stdout, _ := runIn(t, "-json", "./clean")
		if code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
		if strings.TrimSpace(stdout) != "" {
			t.Fatalf("clean -json run produced output:\n%s", stdout)
		}
	})
}

// TestSelection pins -only/-exclude: names select from the suite,
// unknown names are a usage error, and an empty selection is refused
// rather than silently passing everything.
func TestSelection(t *testing.T) {
	t.Run("exclude skips the finding analyzer", func(t *testing.T) {
		code, stdout, stderr := runIn(t, "-exclude", "closecheck", "./dirty")
		if code != 0 {
			t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
		}
		if stdout != "" || stderr != "" {
			t.Fatalf("excluded run produced output: stdout=%q stderr=%q", stdout, stderr)
		}
	})
	t.Run("only an unrelated analyzer", func(t *testing.T) {
		code, _, stderr := runIn(t, "-only", "detrand", "./dirty")
		if code != 0 {
			t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
		}
	})
	t.Run("only the finding analyzer", func(t *testing.T) {
		code, _, stderr := runIn(t, "-only", "closecheck", "./dirty")
		if code != 1 {
			t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
		}
		if !strings.Contains(stderr, "closecheck") {
			t.Fatalf("stderr missing analyzer name:\n%s", stderr)
		}
	})
	t.Run("unknown exclude name", func(t *testing.T) {
		code, _, stderr := runIn(t, "-exclude", "nosuchpass", "./clean")
		if code != 2 {
			t.Fatalf("exit %d, want 2", code)
		}
		if !strings.Contains(stderr, "unknown analyzer") {
			t.Fatalf("stderr missing unknown-analyzer error:\n%s", stderr)
		}
	})
	t.Run("selection cancels to empty", func(t *testing.T) {
		code, _, stderr := runIn(t, "-only", "closecheck", "-exclude", "closecheck", "./clean")
		if code != 2 {
			t.Fatalf("exit %d, want 2; stderr:\n%s", code, stderr)
		}
		if !strings.Contains(stderr, "no analyzers") {
			t.Fatalf("stderr missing empty-selection error:\n%s", stderr)
		}
	})
}

// TestUsage pins that -h prints the exit-code matrix and exits 0 —
// asking for help is not an error.
func TestUsage(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-h"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "Exit codes") {
		t.Fatalf("usage text missing exit-code matrix:\n%s", errb.String())
	}
}

// copyTree copies the fixture module at src into dst so -fix tests can
// rewrite files without mutating testdata.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFix pins the -fix contract: a clean tree is left untouched, a
// fixable finding is rewritten in place to a gofmt-clean file that
// lints clean on the next run, and vettool mode refuses the flag.
func TestFix(t *testing.T) {
	t.Run("noop on clean tree", func(t *testing.T) {
		cleanFile := filepath.Join("testdata", "exitmod", "clean", "clean.go")
		before, err := os.ReadFile(cleanFile)
		if err != nil {
			t.Fatal(err)
		}
		code, stdout, stderr := runIn(t, "-fix", "./clean")
		if code != 0 {
			t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
		}
		if stdout != "" || stderr != "" {
			t.Fatalf("clean -fix run produced output: stdout=%q stderr=%q", stdout, stderr)
		}
		after, err := os.ReadFile(filepath.Join("clean", "clean.go"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("-fix modified a clean file:\n%s", after)
		}
	})
	t.Run("round trip", func(t *testing.T) {
		src, err := filepath.Abs(filepath.Join("testdata", "fixmod"))
		if err != nil {
			t.Fatal(err)
		}
		tmp := t.TempDir()
		copyTree(t, src, tmp)
		t.Chdir(tmp)

		var out, errb bytes.Buffer
		code := run([]string{"-fix", "./..."}, &out, &errb)
		if code != 0 {
			t.Fatalf("first -fix run: exit %d, want 0; stderr:\n%s", code, errb.String())
		}
		if !strings.Contains(errb.String(), "mglint: fixed") {
			t.Fatalf("stderr missing fixed notice:\n%s", errb.String())
		}

		fixed, err := os.ReadFile(filepath.Join("eof", "eof.go"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(fixed, []byte("errors.Is(err, io.EOF)")) {
			t.Fatalf("comparison not rewritten:\n%s", fixed)
		}
		if !bytes.Contains(fixed, []byte(`"errors"`)) {
			t.Fatalf("errors import not added:\n%s", fixed)
		}
		formatted, err := format.Source(fixed)
		if err != nil {
			t.Fatalf("fixed file does not parse: %v", err)
		}
		if !bytes.Equal(formatted, fixed) {
			t.Fatalf("fixed file is not gofmt-clean:\n%s", fixed)
		}

		out.Reset()
		errb.Reset()
		code = run([]string{"./..."}, &out, &errb)
		if code != 0 {
			t.Fatalf("re-run after fix: exit %d, want 0; stderr:\n%s", code, errb.String())
		}
		if out.String() != "" || errb.String() != "" {
			t.Fatalf("re-run after fix produced output: stdout=%q stderr=%q", out.String(), errb.String())
		}
	})
	t.Run("vettool mode refuses fix", func(t *testing.T) {
		var out, errb bytes.Buffer
		code := run([]string{"-fix", "unit.cfg"}, &out, &errb)
		if code != 2 {
			t.Fatalf("exit %d, want 2; stderr:\n%s", code, errb.String())
		}
		if !strings.Contains(errb.String(), "not supported in vettool mode") {
			t.Fatalf("stderr missing vettool refusal:\n%s", errb.String())
		}
	})
}

func decodeLines(t *testing.T, stdout string) []jsonDiag {
	t.Helper()
	var diags []jsonDiag
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if line == "" {
			continue
		}
		var d jsonDiag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		diags = append(diags, d)
	}
	return diags
}
