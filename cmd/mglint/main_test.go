package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// runIn invokes run with the working directory set to the exitmod
// fixture, capturing both streams.
func runIn(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "exitmod"))
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(abs)
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestExitCodes pins the standalone exit-status contract: 0 for clean
// and suppressed-only packages, 1 for unsuppressed diagnostics, 2 for
// load or usage errors.
func TestExitCodes(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		code, stdout, stderr := runIn(t, "./clean")
		if code != 0 {
			t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
		}
		if stdout != "" || stderr != "" {
			t.Fatalf("clean run produced output: stdout=%q stderr=%q", stdout, stderr)
		}
	})
	t.Run("dirty", func(t *testing.T) {
		code, _, stderr := runIn(t, "./dirty")
		if code != 1 {
			t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr)
		}
		if !strings.Contains(stderr, "closecheck") {
			t.Fatalf("stderr missing analyzer name:\n%s", stderr)
		}
		if !strings.Contains(stderr, "dirty.go:") {
			t.Fatalf("stderr missing position:\n%s", stderr)
		}
	})
	t.Run("suppressed", func(t *testing.T) {
		code, stdout, stderr := runIn(t, "./suppressed")
		if code != 0 {
			t.Fatalf("exit %d, want 0; stderr:\n%s", code, stderr)
		}
		if stdout != "" || stderr != "" {
			t.Fatalf("suppressed-only run produced output: stdout=%q stderr=%q", stdout, stderr)
		}
	})
	t.Run("load error", func(t *testing.T) {
		code, _, stderr := runIn(t, "./no/such/pkg")
		if code != 2 {
			t.Fatalf("exit %d, want 2; stderr:\n%s", code, stderr)
		}
	})
	t.Run("unknown analyzer", func(t *testing.T) {
		code, _, stderr := runIn(t, "-only", "nosuchpass", "./clean")
		if code != 2 {
			t.Fatalf("exit %d, want 2", code)
		}
		if !strings.Contains(stderr, "unknown analyzer") {
			t.Fatalf("stderr missing unknown-analyzer error:\n%s", stderr)
		}
	})
}

// TestJSONOutput pins the -json contract: one JSON object per line on
// stdout, suppressed diagnostics included with suppressed=true, exit
// status still driven only by unsuppressed findings.
func TestJSONOutput(t *testing.T) {
	t.Run("dirty", func(t *testing.T) {
		code, stdout, _ := runIn(t, "-json", "./dirty")
		if code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
		diags := decodeLines(t, stdout)
		if len(diags) != 1 {
			t.Fatalf("got %d diagnostics, want 1:\n%s", len(diags), stdout)
		}
		d := diags[0]
		if d.Analyzer != "closecheck" || d.Suppressed || d.Line == 0 {
			t.Fatalf("unexpected diagnostic: %+v", d)
		}
		if filepath.Base(d.Path) != "dirty.go" {
			t.Fatalf("path %q, want .../dirty.go", d.Path)
		}
		if !strings.Contains(d.Message, "Close") {
			t.Fatalf("message %q missing Close", d.Message)
		}
	})
	t.Run("suppressed", func(t *testing.T) {
		code, stdout, _ := runIn(t, "-json", "./suppressed")
		if code != 0 {
			t.Fatalf("exit %d, want 0 for suppressed-only", code)
		}
		diags := decodeLines(t, stdout)
		if len(diags) != 1 {
			t.Fatalf("got %d diagnostics, want 1 (the waived one):\n%s", len(diags), stdout)
		}
		if !diags[0].Suppressed {
			t.Fatalf("diagnostic not marked suppressed: %+v", diags[0])
		}
	})
	t.Run("clean", func(t *testing.T) {
		code, stdout, _ := runIn(t, "-json", "./clean")
		if code != 0 {
			t.Fatalf("exit %d, want 0", code)
		}
		if strings.TrimSpace(stdout) != "" {
			t.Fatalf("clean -json run produced output:\n%s", stdout)
		}
	})
}

func decodeLines(t *testing.T, stdout string) []jsonDiag {
	t.Helper()
	var diags []jsonDiag
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if line == "" {
			continue
		}
		var d jsonDiag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		diags = append(diags, d)
	}
	return diags
}
