// Command mgserve exposes a trained MGDiffNet model as an HTTP inference
// service built on the batched multi-replica engine in internal/serve:
// single-ω requests arriving close together are coalesced into one
// forward pass, identical queries are deduplicated and cached, and very
// large fields route through the slab-parallel path.
//
// The server is overload-safe: request contexts propagate into the
// engine (a disconnected client detaches from its flight), a
// -request-timeout budget bounds every solve, per-client token-bucket
// quotas answer 429 + Retry-After, and load-shed work answers
// 503 + Retry-After — never a generic 500.
//
// Endpoints:
//
//	POST /solve       {"omega":[4 floats],"res":64,"summary":false,"allow_degraded":false}
//	POST /solve-batch {"omegas":[[4 floats],...],"res":64,"summary":true}
//	GET  /stats       engine + server counters
//	GET  /healthz     liveness + model metadata
//	GET  /readyz      readiness (503 while degraded — load balancers drain, liveness stays green)
//
// Example:
//
//	mgserve -model model.bin -addr :8080 -replicas 4 -window 2ms -quota-rps 50
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"mgdiffnet/internal/field"
	"mgdiffnet/internal/serve"
	"mgdiffnet/internal/unet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mgserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		model       = fs.String("model", "", "path to a model saved by mgtrain (required)")
		addr        = fs.String("addr", ":8080", "listen address")
		replicas    = fs.Int("replicas", 0, "network replicas (0 = auto)")
		maxBatch    = fs.Int("max-batch", 8, "max coalesced requests per forward pass")
		window      = fs.Duration("window", 2*time.Millisecond, "micro-batching latency window (0 = greedy)")
		maxQueue    = fs.Int("max-queue", 0, "admission-queue bound; excess work answers 503 (0 = auto: 8*max-batch*replicas)")
		reqTimeout  = fs.Duration("request-timeout", 30*time.Second, "per-request solve budget propagated into the engine (0 = none)")
		quotaRPS    = fs.Float64("quota-rps", 0, "per-client sustained requests/second; over-quota answers 429 (0 = unlimited)")
		quotaBurst  = fs.Int("quota-burst", 0, "per-client burst size (0 = 2*quota-rps)")
		quotaHeader = fs.String("quota-header", "", "header identifying the client for quotas (empty = remote address)")
		cacheSize   = fs.Int("cache", 256, "LRU result-cache entries (negative disables)")
		cacheMB     = fs.Int("cache-mb", 256, "LRU result-cache payload budget in MB")
		slabVoxels  = fs.Int("slab-voxels", 1<<21, "route single requests with >= this many voxels to the slab-parallel path (negative disables)")
		slabWorkers = fs.Int("slab-workers", 2, "slab count of the spatial-inference path")
		warm        = fs.String("warm", "", "comma-separated resolutions to warm each replica at (e.g. 32,64)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *model == "" {
		fmt.Fprintln(stderr, "mgserve: -model is required")
		return 2
	}
	warmRes, err := parseResList(*warm)
	if err != nil {
		fmt.Fprintln(stderr, "mgserve:", err)
		return 2
	}
	net, err := unet.LoadFile(*model)
	if err != nil {
		fmt.Fprintln(stderr, "mgserve:", err)
		return 1
	}
	for _, r := range warmRes {
		if err := net.ValidateRes(r); err != nil {
			fmt.Fprintln(stderr, "mgserve: -warm:", err)
			return 2
		}
	}
	eng, err := serve.NewEngine(serve.Config{
		Net:         net,
		Replicas:    *replicas,
		MaxBatch:    *maxBatch,
		BatchWindow: *window,
		MaxQueue:    *maxQueue,
		CacheSize:   *cacheSize,
		CacheMB:     *cacheMB,
		SlabVoxels:  *slabVoxels,
		SlabWorkers: *slabWorkers,
		WarmRes:     warmRes,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mgserve:", err)
		return 1
	}
	defer eng.Close()

	opts := handlerOptions{
		requestTimeout: *reqTimeout,
		quota:          serve.NewQuotaLimiter(serve.QuotaConfig{RPS: *quotaRPS, Burst: *quotaBurst}),
		quotaHeader:    *quotaHeader,
		logf:           log.New(stderr, "mgserve: ", log.LstdFlags).Printf,
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: newHandler(eng, opts),
		// Slowloris guard: a client that trickles its header or body can
		// no longer pin a connection (and its handler goroutine) forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       1 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(stdout, "mgserve: %dD model %s on %s (replicas %d, max batch %d, window %v, queue %d, request timeout %v)\n",
		eng.Dim(), *model, *addr, eng.Stats().Replicas, *maxBatch, *window, eng.Stats().MaxQueue, *reqTimeout)

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, drain in-flight HTTP, then
		// drain the engine (deferred Close).
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(stderr, "mgserve: shutdown:", err)
			return 1
		}
		fmt.Fprintln(stdout, "mgserve: clean shutdown")
		return 0
	case err := <-errc:
		fmt.Fprintln(stderr, "mgserve:", err)
		return 1
	}
}

func parseResList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad resolution %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// solveRequest is the JSON body of /solve and (with Omegas) /solve-batch.
type solveRequest struct {
	Omega   []float64   `json:"omega,omitempty"`
	Omegas  [][]float64 `json:"omegas,omitempty"`
	Res     int         `json:"res"`
	Summary bool        `json:"summary,omitempty"`
	// AllowDegraded opts in to a coarser-resolution answer (flagged
	// "degraded":true, "res" reporting the served resolution) when the
	// engine is shedding cold misses under sustained overload.
	AllowDegraded bool `json:"allow_degraded,omitempty"`
}

// solveResponse is one answered field. U is omitted in summary mode (the
// min/max/mean triple is always present, so load probes stay cheap).
type solveResponse struct {
	Res      int       `json:"res"`
	Dim      int       `json:"dim"`
	Cached   bool      `json:"cached"`
	Shared   bool      `json:"shared"`
	Slab     bool      `json:"slab"`
	Batch    int       `json:"batch"`
	Degraded bool      `json:"degraded"`
	Min      float64   `json:"min"`
	Max      float64   `json:"max"`
	Mean     float64   `json:"mean"`
	U        []float64 `json:"u,omitempty"`
}

// statsResponse is /stats: the engine counters plus server-side ones.
type statsResponse struct {
	serve.Stats
	QuotaRejected  uint64 `json:"quota_rejected"`
	EncodeFailures uint64 `json:"encode_failures"`
}

func toResponse(r serve.Result, summary bool) solveResponse {
	resp := solveResponse{
		Res: r.Res, Dim: r.Dim,
		Cached: r.Cached, Shared: r.Shared, Slab: r.Slab, Batch: r.Batch,
		Degraded: r.Degraded,
	}
	if len(r.U) > 0 {
		mn, mx, sum := r.U[0], r.U[0], 0.0
		for _, v := range r.U {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			sum += v
		}
		resp.Min, resp.Max, resp.Mean = mn, mx, sum/float64(len(r.U))
	}
	if !summary {
		resp.U = r.U
	}
	return resp
}

func parseOmegaSlice(vals []float64) (field.Omega, error) {
	var w field.Omega
	if len(vals) != field.OmegaDim {
		return w, fmt.Errorf("omega needs %d values, got %d", field.OmegaDim, len(vals))
	}
	copy(w[:], vals)
	return w, nil
}

// handlerOptions carries the serving policy into newHandler, split from
// run so tests can drive the handler through httptest without a socket.
type handlerOptions struct {
	requestTimeout time.Duration
	quota          *serve.QuotaLimiter // nil = unlimited
	quotaHeader    string              // client key header; empty = remote host
	logf           func(format string, args ...any)
}

// clientKey identifies the quota bucket for a request: the configured
// header when present, the remote host otherwise (the port changes per
// connection and would defeat the quota).
func clientKey(r *http.Request, header string) string {
	if header != "" {
		if v := r.Header.Get(header); v != "" {
			return v
		}
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// encodeLogger deduplicates encode-failure logging per connection
// (keyed by RemoteAddr, which pins one TCP connection): the first
// failure on a connection is logged, repeats — a disconnected client
// failing every chunk of a megavoxel response — are only counted. The
// table is bounded; at capacity it resets, which at worst re-logs one
// line per connection.
type encodeLogger struct {
	mu       sync.Mutex
	seen     map[string]struct{}
	failures uint64
}

const encodeLoggerCap = 256

// shouldLog records a failure on conn and reports whether to log it.
func (l *encodeLogger) shouldLog(conn string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.failures++
	if l.seen == nil || len(l.seen) >= encodeLoggerCap {
		l.seen = map[string]struct{}{}
	}
	if _, ok := l.seen[conn]; ok {
		return false
	}
	l.seen[conn] = struct{}{}
	return true
}

func (l *encodeLogger) count() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failures
}

// newHandler builds the HTTP API over an engine.
func newHandler(eng *serve.Engine, opt handlerOptions) http.Handler {
	mux := http.NewServeMux()
	if opt.logf == nil {
		opt.logf = func(string, ...any) {}
	}
	encLog := &encodeLogger{}

	writeJSON := func(w http.ResponseWriter, r *http.Request, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		if err := json.NewEncoder(w).Encode(v); err != nil {
			// The response is already truncated on the wire (usually the
			// client hung up mid-body); surface it once per connection
			// instead of dropping it silently.
			if encLog.shouldLog(r.RemoteAddr) {
				opt.logf("response encode to %s failed: %v", r.RemoteAddr, err)
			}
		}
	}
	badRequest := func(w http.ResponseWriter, r *http.Request, err error) {
		writeJSON(w, r, http.StatusBadRequest, map[string]string{"error": err.Error()})
	}
	// writeError maps engine errors onto the overload-safe status
	// vocabulary: shed work is 503 + Retry-After, an exceeded request
	// budget is 504, a vanished client gets nothing (the connection is
	// dead), and only a genuine engine failure is a 500.
	writeError := func(w http.ResponseWriter, r *http.Request, err error) {
		var ov *serve.OverloadError
		switch {
		case errors.As(err, &ov):
			w.Header().Set("Retry-After", strconv.Itoa(int(ov.RetryAfter/time.Second)))
			writeJSON(w, r, http.StatusServiceUnavailable, map[string]string{
				"error": "overloaded: " + ov.Reason, "retry_after": ov.RetryAfter.String(),
			})
		case errors.Is(err, context.DeadlineExceeded):
			writeJSON(w, r, http.StatusGatewayTimeout, map[string]string{"error": "deadline exceeded"})
		case errors.Is(err, context.Canceled):
			// Client disconnected; nothing to write, nobody to read it.
		default:
			writeJSON(w, r, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		}
	}
	// admit applies the per-client quota and the request-timeout budget;
	// it returns a derived context (and cancel) or ok=false having
	// already answered 429.
	admit := func(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
		if ok, retryAfter := opt.quota.Allow(clientKey(r, opt.quotaHeader), time.Now()); !ok {
			w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
			writeJSON(w, r, http.StatusTooManyRequests, map[string]string{
				"error": "quota exceeded", "retry_after": retryAfter.String(),
			})
			return nil, nil, false
		}
		ctx := r.Context()
		cancel := context.CancelFunc(func() {})
		if opt.requestTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, opt.requestTimeout)
		}
		return ctx, cancel, true
	}
	decode := func(w http.ResponseWriter, r *http.Request) (solveRequest, bool) {
		var req solveRequest
		if r.Method != http.MethodPost {
			writeJSON(w, r, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
			return req, false
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			badRequest(w, r, fmt.Errorf("bad JSON: %w", err))
			return req, false
		}
		if err := eng.ValidateRes(req.Res); err != nil {
			badRequest(w, r, err)
			return req, false
		}
		return req, true
	}

	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decode(w, r)
		if !ok {
			return
		}
		omega, err := parseOmegaSlice(req.Omega)
		if err != nil {
			badRequest(w, r, err)
			return
		}
		ctx, cancel, ok := admit(w, r)
		if !ok {
			return
		}
		defer cancel()
		res, err := eng.SolveQuery(ctx, serve.Query{Omega: omega, Res: req.Res, AllowDegraded: req.AllowDegraded})
		if err != nil {
			writeError(w, r, err)
			return
		}
		writeJSON(w, r, http.StatusOK, toResponse(res, req.Summary))
	})

	mux.HandleFunc("/solve-batch", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decode(w, r)
		if !ok {
			return
		}
		if len(req.Omegas) == 0 {
			badRequest(w, r, fmt.Errorf("omegas is required"))
			return
		}
		qs := make([]serve.Query, len(req.Omegas))
		for i, vals := range req.Omegas {
			omega, err := parseOmegaSlice(vals)
			if err != nil {
				badRequest(w, r, fmt.Errorf("omegas[%d]: %w", i, err))
				return
			}
			qs[i] = serve.Query{Omega: omega, Res: req.Res, AllowDegraded: req.AllowDegraded}
		}
		ctx, cancel, ok := admit(w, r)
		if !ok {
			return
		}
		defer cancel()
		results, err := eng.SolveQueries(ctx, qs)
		if err != nil {
			writeError(w, r, err)
			return
		}
		out := make([]solveResponse, len(results))
		for i, res := range results {
			out[i] = toResponse(res, req.Summary)
		}
		writeJSON(w, r, http.StatusOK, map[string]any{"results": out})
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, http.StatusOK, statsResponse{
			Stats:          eng.Stats(),
			QuotaRejected:  opt.quota.Rejected(),
			EncodeFailures: encLog.count(),
		})
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, http.StatusOK, map[string]any{"ok": true, "dim": eng.Dim()})
	})

	// Readiness is distinct from liveness: a degraded engine is alive
	// (cache hits still answer) but should be drained by the load
	// balancer until the saturation score recovers.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		st := eng.Stats()
		if st.DegradedMode {
			writeJSON(w, r, http.StatusServiceUnavailable, map[string]any{
				"ready": false, "reason": "degraded", "queue_depth": st.QueueDepth,
			})
			return
		}
		writeJSON(w, r, http.StatusOK, map[string]any{"ready": true, "queue_depth": st.QueueDepth})
	})

	return mux
}
