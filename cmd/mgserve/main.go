// Command mgserve exposes a trained MGDiffNet model as an HTTP inference
// service built on the batched multi-replica engine in internal/serve:
// single-ω requests arriving close together are coalesced into one
// forward pass, identical queries are deduplicated and cached, and very
// large fields route through the slab-parallel path.
//
// Endpoints:
//
//	POST /solve       {"omega":[4 floats],"res":64,"summary":false}
//	POST /solve-batch {"omegas":[[4 floats],...],"res":64,"summary":true}
//	GET  /stats       engine counters
//	GET  /healthz     liveness + model metadata
//
// Example:
//
//	mgserve -model model.bin -addr :8080 -replicas 4 -window 2ms
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mgdiffnet/internal/field"
	"mgdiffnet/internal/serve"
	"mgdiffnet/internal/unet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mgserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		model       = fs.String("model", "", "path to a model saved by mgtrain (required)")
		addr        = fs.String("addr", ":8080", "listen address")
		replicas    = fs.Int("replicas", 0, "network replicas (0 = auto)")
		maxBatch    = fs.Int("max-batch", 8, "max coalesced requests per forward pass")
		window      = fs.Duration("window", 2*time.Millisecond, "micro-batching latency window (0 = greedy)")
		cacheSize   = fs.Int("cache", 256, "LRU result-cache entries (negative disables)")
		cacheMB     = fs.Int("cache-mb", 256, "LRU result-cache payload budget in MB")
		slabVoxels  = fs.Int("slab-voxels", 1<<21, "route single requests with >= this many voxels to the slab-parallel path (negative disables)")
		slabWorkers = fs.Int("slab-workers", 2, "slab count of the spatial-inference path")
		warm        = fs.String("warm", "", "comma-separated resolutions to warm each replica at (e.g. 32,64)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *model == "" {
		fmt.Fprintln(stderr, "mgserve: -model is required")
		return 2
	}
	warmRes, err := parseResList(*warm)
	if err != nil {
		fmt.Fprintln(stderr, "mgserve:", err)
		return 2
	}
	net, err := unet.LoadFile(*model)
	if err != nil {
		fmt.Fprintln(stderr, "mgserve:", err)
		return 1
	}
	for _, r := range warmRes {
		if err := net.ValidateRes(r); err != nil {
			fmt.Fprintln(stderr, "mgserve: -warm:", err)
			return 2
		}
	}
	eng, err := serve.NewEngine(serve.Config{
		Net:         net,
		Replicas:    *replicas,
		MaxBatch:    *maxBatch,
		BatchWindow: *window,
		CacheSize:   *cacheSize,
		CacheMB:     *cacheMB,
		SlabVoxels:  *slabVoxels,
		SlabWorkers: *slabWorkers,
		WarmRes:     warmRes,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mgserve:", err)
		return 1
	}
	defer eng.Close()

	srv := &http.Server{Addr: *addr, Handler: newHandler(eng)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(stdout, "mgserve: %dD model %s on %s (replicas %d, max batch %d, window %v)\n",
		eng.Dim(), *model, *addr, eng.Stats().Replicas, *maxBatch, *window)

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, drain in-flight HTTP, then
		// drain the engine (deferred Close).
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(stderr, "mgserve: shutdown:", err)
			return 1
		}
		fmt.Fprintln(stdout, "mgserve: clean shutdown")
		return 0
	case err := <-errc:
		fmt.Fprintln(stderr, "mgserve:", err)
		return 1
	}
}

func parseResList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad resolution %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// solveRequest is the JSON body of /solve and (with Omegas) /solve-batch.
type solveRequest struct {
	Omega   []float64   `json:"omega,omitempty"`
	Omegas  [][]float64 `json:"omegas,omitempty"`
	Res     int         `json:"res"`
	Summary bool        `json:"summary,omitempty"`
}

// solveResponse is one answered field. U is omitted in summary mode (the
// min/max/mean triple is always present, so load probes stay cheap).
type solveResponse struct {
	Res    int       `json:"res"`
	Dim    int       `json:"dim"`
	Cached bool      `json:"cached"`
	Shared bool      `json:"shared"`
	Slab   bool      `json:"slab"`
	Batch  int       `json:"batch"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	U      []float64 `json:"u,omitempty"`
}

func toResponse(r serve.Result, summary bool) solveResponse {
	resp := solveResponse{
		Res: r.Res, Dim: r.Dim,
		Cached: r.Cached, Shared: r.Shared, Slab: r.Slab, Batch: r.Batch,
	}
	if len(r.U) > 0 {
		mn, mx, sum := r.U[0], r.U[0], 0.0
		for _, v := range r.U {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			sum += v
		}
		resp.Min, resp.Max, resp.Mean = mn, mx, sum/float64(len(r.U))
	}
	if !summary {
		resp.U = r.U
	}
	return resp
}

func parseOmegaSlice(vals []float64) (field.Omega, error) {
	var w field.Omega
	if len(vals) != field.OmegaDim {
		return w, fmt.Errorf("omega needs %d values, got %d", field.OmegaDim, len(vals))
	}
	copy(w[:], vals)
	return w, nil
}

// newHandler builds the HTTP API over an engine. Split from run so tests
// can drive it through httptest without binding a socket.
func newHandler(eng *serve.Engine) http.Handler {
	mux := http.NewServeMux()

	writeJSON := func(w http.ResponseWriter, status int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(v)
	}
	badRequest := func(w http.ResponseWriter, err error) {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
	}
	decode := func(w http.ResponseWriter, r *http.Request) (solveRequest, bool) {
		var req solveRequest
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
			return req, false
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			badRequest(w, fmt.Errorf("bad JSON: %w", err))
			return req, false
		}
		if err := eng.ValidateRes(req.Res); err != nil {
			badRequest(w, err)
			return req, false
		}
		return req, true
	}

	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decode(w, r)
		if !ok {
			return
		}
		omega, err := parseOmegaSlice(req.Omega)
		if err != nil {
			badRequest(w, err)
			return
		}
		res, err := eng.Solve(omega, req.Res)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, toResponse(res, req.Summary))
	})

	mux.HandleFunc("/solve-batch", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decode(w, r)
		if !ok {
			return
		}
		if len(req.Omegas) == 0 {
			badRequest(w, fmt.Errorf("omegas is required"))
			return
		}
		ws := make([]field.Omega, len(req.Omegas))
		for i, vals := range req.Omegas {
			omega, err := parseOmegaSlice(vals)
			if err != nil {
				badRequest(w, fmt.Errorf("omegas[%d]: %w", i, err))
				return
			}
			ws[i] = omega
		}
		results, err := eng.SolveBatch(ws, req.Res)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		out := make([]solveResponse, len(results))
		for i, res := range results {
			out[i] = toResponse(res, req.Summary)
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": out})
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, eng.Stats())
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "dim": eng.Dim()})
	})

	return mux
}
