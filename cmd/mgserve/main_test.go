package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mgdiffnet/internal/serve"
	"mgdiffnet/internal/unet"
)

func testEngine(t *testing.T, cfg serve.Config) *serve.Engine {
	t.Helper()
	ucfg := unet.DefaultConfig(2)
	ucfg.Depth = 2
	ucfg.BaseFilters = 4
	cfg.Net = unet.New(ucfg)
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 4
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = time.Millisecond
	}
	eng, err := serve.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

func testHandler(t *testing.T) http.Handler {
	t.Helper()
	return newHandler(testEngine(t, serve.Config{}), handlerOptions{})
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewBufferString(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestSolveEndpoint(t *testing.T) {
	h := testHandler(t)
	rec := post(t, h, "/solve", `{"omega":[0.3,1.5,0.1,-1.2],"res":16}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp solveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Res != 16 || resp.Dim != 2 || len(resp.U) != 16*16 {
		t.Fatalf("bad response: res %d dim %d len(u) %d", resp.Res, resp.Dim, len(resp.U))
	}
	// Dirichlet left edge is 1 by construction; spot-check BC imposition.
	if resp.U[0] != 1 {
		t.Fatalf("u[0] = %v, want the Dirichlet value 1", resp.U[0])
	}

	// Summary mode keeps the stats but drops the field payload.
	rec = post(t, h, "/solve", `{"omega":[0.3,1.5,0.1,-1.2],"res":16,"summary":true}`)
	resp = solveResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.U) != 0 || resp.Max == 0 {
		t.Fatalf("summary response kept u (%d values) or lost stats (max %v)", len(resp.U), resp.Max)
	}
	if !resp.Cached {
		t.Fatal("identical repeat query missed the cache")
	}
}

func TestSolveBatchEndpoint(t *testing.T) {
	h := testHandler(t)
	rec := post(t, h, "/solve-batch", `{"omegas":[[0.1,0.2,0.3,0.4],[1,2,-1,-2]],"res":8,"summary":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Results []solveResponse `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	h := testHandler(t)
	cases := []struct{ path, body string }{
		{"/solve", `{"omega":[0.1,0.2],"res":16}`},         // wrong ω arity
		{"/solve", `{"omega":[0.1,0.2,0.3,0.4],"res":13}`}, // bad granularity
		{"/solve", `not json`},
		{"/solve-batch", `{"omegas":[],"res":16}`},
		{"/solve-batch", `{"omegas":[[1,2,3]],"res":16}`},
	}
	for _, c := range cases {
		if rec := post(t, h, c.path, c.body); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s %q: status %d, want 400", c.path, c.body, rec.Code)
		}
	}
	// GET on a POST endpoint.
	req := httptest.NewRequest(http.MethodGet, "/solve", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve: status %d, want 405", rec.Code)
	}
}

func TestStatsAndHealth(t *testing.T) {
	h := testHandler(t)
	post(t, h, "/solve", `{"omega":[0.3,1.5,0.1,-1.2],"res":8}`)
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"requests":1`) {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body.String())
	}
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok":true`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Fatalf("missing -model: code %d, want 2", code)
	}
	if code := run([]string{"-model", "x.bin", "-warm", "abc"}, &out, &errb); code != 2 {
		t.Fatalf("bad -warm: code %d, want 2", code)
	}
	if code := run([]string{"-model", "/nonexistent/model.bin"}, &out, &errb); code != 1 {
		t.Fatalf("unreadable model: code %d, want 1", code)
	}
}

func TestParseResList(t *testing.T) {
	got, err := parseResList(" 16, 32 ")
	if err != nil || len(got) != 2 || got[0] != 16 || got[1] != 32 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := parseResList("16,x"); err == nil {
		t.Fatal("expected error")
	}
	if got, err := parseResList(""); err != nil || got != nil {
		t.Fatalf("empty list: %v, %v", got, err)
	}
}

// TestQuotaRejected429 pins the per-client quota surface: over-quota
// requests answer 429 with a Retry-After header and a JSON error, and
// the /stats counter records them.
func TestQuotaRejected429(t *testing.T) {
	eng := testEngine(t, serve.Config{})
	h := newHandler(eng, handlerOptions{
		quota:       serve.NewQuotaLimiter(serve.QuotaConfig{RPS: 0.1, Burst: 1}),
		quotaHeader: "X-API-Key",
	})
	body := `{"omega":[0.3,1.5,0.1,-1.2],"res":8,"summary":true}`
	mk := func(key string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewBufferString(body))
		req.Header.Set("X-API-Key", key)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	if rec := mk("alice"); rec.Code != http.StatusOK {
		t.Fatalf("first request: %d %s", rec.Code, rec.Body.String())
	}
	rec := mk("alice") // burst 1, refill 0.1 rps: immediately over quota
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota request: %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "quota") {
		t.Fatalf("429 body: %s", rec.Body.String())
	}
	// A different client key is unaffected.
	if rec := mk("bob"); rec.Code != http.StatusOK {
		t.Fatalf("independent client: %d", rec.Code)
	}
	// /stats surfaces the rejection counter.
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, req)
	if !strings.Contains(srec.Body.String(), `"quota_rejected":1`) {
		t.Fatalf("stats: %s", srec.Body.String())
	}
}

// TestOverload503 pins the shedding surface: work refused by the
// engine's admission queue answers 503 + Retry-After — never a 500.
func TestOverload503(t *testing.T) {
	eng := testEngine(t, serve.Config{
		Replicas: 1, MaxBatch: 1, MaxQueue: 1, CacheSize: -1,
		Faults: &serve.Faults{Seed: 1, SlowReplicaProb: 1, ReplicaDelay: 30 * time.Millisecond},
	})
	h := newHandler(eng, handlerOptions{})
	const n = 20
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"omega":[0.%d,1.5,0.1,-1.2],"res":8,"summary":true}`, i)
			rec := post(t, h, "/solve", body)
			codes[i] = rec.Code
			if rec.Code == http.StatusServiceUnavailable && rec.Header().Get("Retry-After") == "" {
				t.Error("503 without Retry-After")
			}
		}(i)
	}
	wg.Wait()
	ok, shed := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Fatalf("unexpected status %d under overload (want only 200/503)", c)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("flood produced %d OK / %d shed; want both nonzero", ok, shed)
	}
}

// TestRequestTimeout504 pins the -request-timeout budget: a solve that
// cannot finish inside it answers 504.
func TestRequestTimeout504(t *testing.T) {
	eng := testEngine(t, serve.Config{
		Replicas: 1, MaxBatch: 1, CacheSize: -1,
		Faults: &serve.Faults{Seed: 2, SlowReplicaProb: 1, ReplicaDelay: 200 * time.Millisecond},
	})
	h := newHandler(eng, handlerOptions{requestTimeout: 20 * time.Millisecond})
	rec := post(t, h, "/solve", `{"omega":[0.3,1.5,0.1,-1.2],"res":8}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body.String())
	}
}

// TestClientDisconnectWritesNothing pins the canceled-client path: the
// handler returns without attempting a response body (and without
// surfacing a 500).
func TestClientDisconnectWritesNothing(t *testing.T) {
	eng := testEngine(t, serve.Config{
		Replicas: 1, MaxBatch: 1, CacheSize: -1,
		Faults: &serve.Faults{Seed: 3, SlowReplicaProb: 1, ReplicaDelay: 100 * time.Millisecond},
	})
	h := newHandler(eng, handlerOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/solve",
		bytes.NewBufferString(`{"omega":[0.3,1.5,0.1,-1.2],"res":8}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, req)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let the solve start
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
	if rec.Body.Len() != 0 {
		t.Fatalf("disconnected client received a body: %s", rec.Body.String())
	}
}

// TestReadyz pins readiness vs liveness: a degraded engine stays live
// on /healthz but reports 503 on /readyz so the load balancer drains it.
func TestReadyz(t *testing.T) {
	h := testHandler(t)
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ready":true`) {
		t.Fatalf("healthy readyz: %d %s", rec.Code, rec.Body.String())
	}

	degraded := newHandler(testEngine(t, serve.Config{Faults: &serve.Faults{ForceDegraded: true}}), handlerOptions{})
	rec = httptest.NewRecorder()
	degraded.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"ready":false`) {
		t.Fatalf("degraded readyz: %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	degraded.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded healthz (liveness) must stay 200, got %d", rec.Code)
	}
}

// TestAllowDegradedEndToEnd pins the HTTP opt-in: "allow_degraded":true
// gets a coarser answer flagged degraded, the plain request is shed 503.
func TestAllowDegradedEndToEnd(t *testing.T) {
	eng := testEngine(t, serve.Config{Faults: &serve.Faults{ForceDegraded: true}})
	h := newHandler(eng, handlerOptions{})
	rec := post(t, h, "/solve", `{"omega":[0.3,1.5,0.1,-1.2],"res":16,"summary":true}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded cold miss: %d, want 503", rec.Code)
	}
	rec = post(t, h, "/solve", `{"omega":[0.3,1.5,0.1,-1.2],"res":16,"summary":true,"allow_degraded":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("allow_degraded request: %d %s", rec.Code, rec.Body.String())
	}
	var resp solveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Res != 8 {
		t.Fatalf("degraded=%v res=%d, want true/8", resp.Degraded, resp.Res)
	}
}

// TestEncodeFailureLoggedOnce pins the writeJSON contract: an encode
// failure is logged once per connection and counted in /stats.
func TestEncodeFailureLoggedOnce(t *testing.T) {
	eng := testEngine(t, serve.Config{})
	var mu sync.Mutex
	var logged []string
	h := newHandler(eng, handlerOptions{logf: func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	body := `{"omega":[0.3,1.5,0.1,-1.2],"res":8}`
	for i := 0; i < 3; i++ {
		req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewBufferString(body))
		req.RemoteAddr = "10.0.0.1:55555" // same connection every time
		h.ServeHTTP(failingWriter{httptest.NewRecorder()}, req)
	}
	mu.Lock()
	n := len(logged)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("encode failure logged %d times for one connection, want 1 (%v)", n, logged)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if !strings.Contains(rec.Body.String(), `"encode_failures":3`) {
		t.Fatalf("stats: %s", rec.Body.String())
	}
}

// failingWriter fails every body write, simulating a client that hung up
// between the handler's header and body writes.
type failingWriter struct{ *httptest.ResponseRecorder }

func (failingWriter) Write([]byte) (int, error) {
	return 0, fmt.Errorf("connection reset by peer")
}
