package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mgdiffnet/internal/serve"
	"mgdiffnet/internal/unet"
)

func testHandler(t *testing.T) http.Handler {
	t.Helper()
	cfg := unet.DefaultConfig(2)
	cfg.Depth = 2
	cfg.BaseFilters = 4
	eng, err := serve.NewEngine(serve.Config{
		Net: unet.New(cfg), Replicas: 2, MaxBatch: 4, BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return newHandler(eng)
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewBufferString(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestSolveEndpoint(t *testing.T) {
	h := testHandler(t)
	rec := post(t, h, "/solve", `{"omega":[0.3,1.5,0.1,-1.2],"res":16}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp solveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Res != 16 || resp.Dim != 2 || len(resp.U) != 16*16 {
		t.Fatalf("bad response: res %d dim %d len(u) %d", resp.Res, resp.Dim, len(resp.U))
	}
	// Dirichlet left edge is 1 by construction; spot-check BC imposition.
	if resp.U[0] != 1 {
		t.Fatalf("u[0] = %v, want the Dirichlet value 1", resp.U[0])
	}

	// Summary mode keeps the stats but drops the field payload.
	rec = post(t, h, "/solve", `{"omega":[0.3,1.5,0.1,-1.2],"res":16,"summary":true}`)
	resp = solveResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.U) != 0 || resp.Max == 0 {
		t.Fatalf("summary response kept u (%d values) or lost stats (max %v)", len(resp.U), resp.Max)
	}
	if !resp.Cached {
		t.Fatal("identical repeat query missed the cache")
	}
}

func TestSolveBatchEndpoint(t *testing.T) {
	h := testHandler(t)
	rec := post(t, h, "/solve-batch", `{"omegas":[[0.1,0.2,0.3,0.4],[1,2,-1,-2]],"res":8,"summary":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Results []solveResponse `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	h := testHandler(t)
	cases := []struct{ path, body string }{
		{"/solve", `{"omega":[0.1,0.2],"res":16}`},         // wrong ω arity
		{"/solve", `{"omega":[0.1,0.2,0.3,0.4],"res":13}`}, // bad granularity
		{"/solve", `not json`},
		{"/solve-batch", `{"omegas":[],"res":16}`},
		{"/solve-batch", `{"omegas":[[1,2,3]],"res":16}`},
	}
	for _, c := range cases {
		if rec := post(t, h, c.path, c.body); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s %q: status %d, want 400", c.path, c.body, rec.Code)
		}
	}
	// GET on a POST endpoint.
	req := httptest.NewRequest(http.MethodGet, "/solve", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve: status %d, want 405", rec.Code)
	}
}

func TestStatsAndHealth(t *testing.T) {
	h := testHandler(t)
	post(t, h, "/solve", `{"omega":[0.3,1.5,0.1,-1.2],"res":8}`)
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"requests":1`) {
		t.Fatalf("stats: %d %s", rec.Code, rec.Body.String())
	}
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok":true`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Fatalf("missing -model: code %d, want 2", code)
	}
	if code := run([]string{"-model", "x.bin", "-warm", "abc"}, &out, &errb); code != 2 {
		t.Fatalf("bad -warm: code %d, want 2", code)
	}
	if code := run([]string{"-model", "/nonexistent/model.bin"}, &out, &errb); code != 1 {
		t.Fatalf("unreadable model: code %d, want 1", code)
	}
}

func TestParseResList(t *testing.T) {
	got, err := parseResList(" 16, 32 ")
	if err != nil || len(got) != 2 || got[0] != 16 || got[1] != 32 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := parseResList("16,x"); err == nil {
		t.Fatal("expected error")
	}
	if got, err := parseResList(""); err != nil || got != nil {
		t.Fatalf("empty list: %v, %v", got, err)
	}
}
