// Command mgsolve runs the traditional FEM comparator: it solves the
// generalized Poisson problem for one parameter vector ω with either
// conjugate gradients (any grid) or geometric multigrid (2^k+1 grids) and
// reports solver statistics.
//
// Example:
//
//	mgsolve -dim 2 -res 65 -method gmg -cycle w -omega "0.3105,1.5386,0.0932,-1.2442"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mgdiffnet/internal/fem"
	"mgdiffnet/internal/field"
	"mgdiffnet/internal/gmg"
	"mgdiffnet/internal/sparse"
	"mgdiffnet/internal/tensor"
	"mgdiffnet/internal/vtkio"
)

func parseOmega(s string) (field.Omega, error) {
	var w field.Omega
	parts := strings.Split(s, ",")
	if len(parts) != field.OmegaDim {
		return w, fmt.Errorf("omega needs %d comma-separated values", field.OmegaDim)
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return w, err
		}
		w[i] = v
	}
	return w, nil
}

func parseCycle(s string) (gmg.CycleType, error) {
	switch strings.ToLower(s) {
	case "v":
		return gmg.VCycle, nil
	case "w":
		return gmg.WCycle, nil
	case "f":
		return gmg.FCycle, nil
	case "half-v", "halfv", "hv":
		return gmg.HalfVCycle, nil
	}
	return gmg.VCycle, fmt.Errorf("unknown cycle %q", s)
}

func main() {
	var (
		dim      = flag.Int("dim", 2, "spatial dimensionality (2 or 3)")
		res      = flag.Int("res", 65, "nodal resolution (2^k+1 for -method gmg)")
		method   = flag.String("method", "gmg", "solver: cg or gmg")
		cycle    = flag.String("cycle", "v", "gmg cycle: v, w, f, half-v")
		tol      = flag.Float64("tol", 1e-8, "relative residual tolerance")
		omegaStr = flag.String("omega", "0.3105,1.5386,0.0932,-1.2442", "parameter vector ω")
		outVTI   = flag.String("vti", "", "write solution and diffusivity to this VTK ImageData path")
	)
	flag.Parse()

	w, err := parseOmega(*omegaStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgsolve:", err)
		os.Exit(2)
	}
	var nu *tensor.Tensor
	if *dim == 2 {
		nu = field.Raster2D(w, *res)
	} else {
		nu = field.Raster3D(w, *res)
	}

	start := time.Now()
	var u *tensor.Tensor
	switch *method {
	case "cg":
		var st sparse.CGResult
		if *dim == 2 {
			u, st = fem.Solve2D(nu, *tol, 100000)
		} else {
			u, st = fem.Solve3D(nu, *tol, 100000)
		}
		fmt.Printf("CG: %d iterations, residual %.3e, converged %v\n", st.Iterations, st.Residual, st.Converged)
	case "gmg":
		ct, err := parseCycle(*cycle)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgsolve:", err)
			os.Exit(2)
		}
		opt := gmg.Options{Cycle: ct, Tol: *tol}
		var st gmg.Stats
		if *dim == 2 {
			u, st = gmg.NewSolver2D(nu, opt).Solve()
		} else {
			u, st = gmg.NewSolver3D(nu, opt).Solve()
		}
		fmt.Printf("GMG %s-cycle: %d cycles over %d levels, residual %.3e, converged %v\n",
			ct, st.Cycles, st.Levels, st.Residual, st.Converged)
	default:
		fmt.Fprintf(os.Stderr, "mgsolve: unknown method %q\n", *method)
		os.Exit(2)
	}
	elapsed := time.Since(start)
	fmt.Printf("solved %dD res %d in %v; u in [%.4f, %.4f]\n",
		*dim, *res, elapsed.Round(time.Millisecond), u.Min(), u.Max())

	if *outVTI != "" {
		fields := []vtkio.Field{{Name: "u_fem", Data: u}, {Name: "nu", Data: nu}}
		if err := vtkio.WriteFile(*outVTI, fields); err != nil {
			fmt.Fprintln(os.Stderr, "mgsolve: vti:", err)
			os.Exit(1)
		}
		fmt.Printf("VTK ImageData written to %s\n", *outVTI)
	}
}
