// Command mgbench regenerates every table and figure of the paper's
// evaluation section from the reproduction harnesses in
// internal/experiments.
//
// Example:
//
//	mgbench -exp all -scale quick
//	mgbench -exp table1 -scale medium
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mgdiffnet/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment: fig2, table1, fig7, table2, fig8, fig9, fig10, table3, table4, table5, table7, timing, baselines, all")
		scale = flag.String("scale", "quick", "workload scale: quick, medium, full")
	)
	flag.Parse()

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgbench:", err)
		os.Exit(2)
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	any := false

	var table1Rows []experiments.Table1Row
	if run("table1") || run("fig7") {
		any = true
		fmt.Println("== running Table 1 (multigrid strategies)…")
		table1Rows = experiments.Table1(experiments.DefaultTable1Config(sc))
	}

	switch {
	case strings.Contains("fig2 table1 fig7 table2 fig8 fig9 fig10 table3 table4 table5 table7 timing baselines all", *exp):
	default:
		fmt.Fprintf(os.Stderr, "mgbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if run("fig2") {
		any = true
		fmt.Println(experiments.FormatFigure2(experiments.Figure2(sc)))
	}
	if run("table1") {
		fmt.Println(experiments.FormatTable1(table1Rows))
	}
	if run("fig7") {
		fmt.Println(experiments.FormatFigure7(experiments.Figure7(table1Rows)))
	}
	if run("table2") {
		any = true
		fmt.Println(experiments.FormatTable2(experiments.Table2(sc)))
	}
	if run("fig8") {
		any = true
		fmt.Println(experiments.FormatFigure8(experiments.Figure8(sc)))
	}
	if run("fig9") {
		any = true
		r, err := experiments.Figure9(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mgbench: fig9:", err)
			os.Exit(1)
		}
		fmt.Println(experiments.FormatFigure9(r))
	}
	if run("fig10") {
		any = true
		fmt.Println(experiments.FormatFigure10(experiments.Figure10(sc)))
	}
	if run("table3") {
		any = true
		fmt.Println(experiments.FormatCompare("Table 3: strategy predictions vs FEM", experiments.Table3(sc)))
	}
	if run("table4") {
		any = true
		fmt.Println(experiments.FormatCompare("Table 4: anecdotal omegas vs FEM (2D)",
			experiments.Table4(sc, experiments.Table4Omegas)))
	}
	if run("table5") {
		any = true
		fmt.Println(experiments.FormatCompare("Table 5: 3D prediction vs FEM", experiments.Table5(sc)))
	}
	if run("table7") {
		any = true
		fmt.Println(experiments.FormatCompare("Table 7: appendix omegas vs FEM (2D)",
			experiments.Table4(sc, experiments.Table7Omegas)))
	}
	if run("timing") {
		any = true
		fmt.Println(experiments.FormatTiming(experiments.InferenceVsFEM(sc)))
	}
	if run("baselines") {
		any = true
		rows := experiments.DataFreeVsDataDriven(sc)
		rows = append(rows, experiments.PINNBaseline(sc))
		fmt.Println(experiments.FormatBaselines(rows))
	}
	if !any && len(table1Rows) == 0 {
		fmt.Fprintf(os.Stderr, "mgbench: nothing ran for -exp %q\n", *exp)
		os.Exit(2)
	}
}
