// Command mginfer loads a model trained by cmd/mgtrain and produces a
// full-field solution for a given parameter vector ω, optionally comparing
// it against the FEM reference and writing the fields as CSV.
//
// Example:
//
//	mginfer -model model.bin -omega "0.3105,1.5386,0.0932,-1.2442" -res 64 -compare
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mgdiffnet/internal/fem"
	"mgdiffnet/internal/field"
	"mgdiffnet/internal/tensor"
	"mgdiffnet/internal/unet"
	"mgdiffnet/internal/vtkio"
)

func parseOmega(s string) (field.Omega, error) {
	var w field.Omega
	parts := strings.Split(s, ",")
	if len(parts) != field.OmegaDim {
		return w, fmt.Errorf("omega needs %d comma-separated values", field.OmegaDim)
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return w, fmt.Errorf("omega component %d: %w", i, err)
		}
		w[i] = v
	}
	return w, nil
}

func writeCSV(path string, f *tensor.Tensor) (err error) {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	// The csv writer buffers, so a full disk or closed pipe only surfaces
	// at Flush/Close time; both must be checked or the field is silently
	// truncated.
	defer func() {
		if cerr := out.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	cw := csv.NewWriter(out)
	res := f.Dim(f.Rank() - 1)
	rows := f.Len() / res
	rec := make([]string, res)
	for r := 0; r < rows; r++ {
		for c := 0; c < res; c++ {
			rec[c] = strconv.FormatFloat(f.Data[r*res+c], 'g', 8, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func main() {
	var (
		model    = flag.String("model", "", "path to a model saved by mgtrain (required)")
		omegaStr = flag.String("omega", "0.3105,1.5386,0.0932,-1.2442", "parameter vector ω (4 comma-separated values)")
		res      = flag.Int("res", 64, "inference resolution")
		compare  = flag.Bool("compare", false, "also run the FEM solver and report the error")
		outCSV   = flag.String("csv", "", "write the predicted field to this CSV path")
		outVTI   = flag.String("vti", "", "write prediction (+diffusivity, +FEM with -compare) to this VTK ImageData path")
	)
	flag.Parse()

	if *model == "" {
		fmt.Fprintln(os.Stderr, "mginfer: -model is required")
		os.Exit(2)
	}
	w, err := parseOmega(*omegaStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mginfer:", err)
		os.Exit(2)
	}
	net, err := unet.LoadFile(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mginfer:", err)
		os.Exit(1)
	}

	dim := net.Cfg.Dim
	loss := fem.NewEnergyLoss(dim)
	var nu *tensor.Tensor
	if dim == 2 {
		nu = tensor.New(1, 1, *res, *res)
		copy(nu.Data, field.Raster2D(w, *res).Data)
	} else {
		nu = tensor.New(1, 1, *res, *res, *res)
		copy(nu.Data, field.Raster3D(w, *res).Data)
	}
	pred := loss.WithBC(net.Forward(nu, false))

	var u *tensor.Tensor
	if dim == 2 {
		u = tensor.FromSlice(pred.Data, *res, *res)
	} else {
		u = tensor.FromSlice(pred.Data, *res, *res, *res)
	}
	fmt.Printf("mginfer: %dD field at res %d, u in [%.4f, %.4f], mean %.4f\n",
		dim, *res, u.Min(), u.Max(), u.Mean())

	var uFEM *tensor.Tensor
	if *compare {
		if dim == 2 {
			uFEM, _ = fem.Solve2D(field.Raster2D(w, *res), 1e-9, 50000)
		} else {
			uFEM, _ = fem.Solve3D(field.Raster3D(w, *res), 1e-8, 50000)
		}
		diff := u.Clone()
		diff.Sub(uFEM)
		fmt.Printf("vs FEM: RMSE %.6f, max|err| %.6f, rel L2 %.6f\n",
			u.RMSE(uFEM), diff.AbsMax(), diff.Norm2()/uFEM.Norm2())
	}

	if *outVTI != "" {
		var nuField *tensor.Tensor
		if dim == 2 {
			nuField = field.Raster2D(w, *res)
		} else {
			nuField = field.Raster3D(w, *res)
		}
		fields := []vtkio.Field{{Name: "u_mgdiffnet", Data: u}, {Name: "nu", Data: nuField}}
		if uFEM != nil {
			fields = append(fields, vtkio.Field{Name: "u_fem", Data: uFEM})
		}
		if err := vtkio.WriteFile(*outVTI, fields); err != nil {
			fmt.Fprintln(os.Stderr, "mginfer: vti:", err)
			os.Exit(1)
		}
		fmt.Printf("VTK ImageData written to %s\n", *outVTI)
	}

	if *outCSV != "" {
		if err := writeCSV(*outCSV, u); err != nil {
			fmt.Fprintln(os.Stderr, "mginfer: csv:", err)
			os.Exit(1)
		}
		fmt.Printf("field written to %s\n", *outCSV)
	}
}
