// Command mginfer loads a model trained by cmd/mgtrain and produces a
// full-field solution for a given parameter vector ω — or, with
// -omega-file, for a whole batch of ω vectors coalesced through the
// internal/serve engine — optionally comparing against the FEM reference
// and writing the fields as CSV or VTK.
//
// Examples:
//
//	mginfer -model model.bin -omega "0.3105,1.5386,0.0932,-1.2442" -res 64 -compare
//	mginfer -model model.bin -omega-file omegas.txt -res 64
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mgdiffnet/internal/fem"
	"mgdiffnet/internal/field"
	"mgdiffnet/internal/serve"
	"mgdiffnet/internal/sparse"
	"mgdiffnet/internal/tensor"
	"mgdiffnet/internal/unet"
	"mgdiffnet/internal/vtkio"
)

func parseOmega(s string) (field.Omega, error) {
	var w field.Omega
	parts := strings.Split(s, ",")
	if len(parts) != field.OmegaDim {
		return w, fmt.Errorf("omega needs %d comma-separated values", field.OmegaDim)
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return w, fmt.Errorf("omega component %d: %w", i, err)
		}
		w[i] = v
	}
	return w, nil
}

// readOmegaFile parses one ω per line; blank lines and #-comments are
// skipped.
func readOmegaFile(path string) ([]field.Omega, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ws []field.Omega
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		w, err := parseOmega(s)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		ws = append(ws, w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(ws) == 0 {
		return nil, fmt.Errorf("%s: no omega vectors found", path)
	}
	return ws, nil
}

func writeCSV(path string, f *tensor.Tensor) (err error) {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	// The csv writer buffers, so a full disk or closed pipe only surfaces
	// at Flush/Close time; both must be checked or the field is silently
	// truncated.
	defer func() {
		if cerr := out.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	cw := csv.NewWriter(out)
	res := f.Dim(f.Rank() - 1)
	rows := f.Len() / res
	rec := make([]string, res)
	for r := 0; r < rows; r++ {
		for c := 0; c < res; c++ {
			rec[c] = strconv.FormatFloat(f.Data[r*res+c], 'g', 8, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// solveFEM runs the FEM reference for ω at res and reports the CG outcome.
func solveFEM(dim int, w field.Omega, res int) (*tensor.Tensor, sparse.CGResult) {
	if dim == 2 {
		return fem.Solve2D(field.Raster2D(w, res), 1e-9, 50000)
	}
	return fem.Solve3D(field.Raster3D(w, res), 1e-8, 50000)
}

// compareLine prints the error metrics of u against the FEM reference and
// reports whether the reference actually converged. An unconverged CG is
// not a reference: the caller must exit non-zero so scripts cannot
// mistake drift of the baseline for model error.
func compareLine(stdout, stderr io.Writer, dim int, w field.Omega, u *tensor.Tensor, res int) (uFEM *tensor.Tensor, ok bool) {
	uFEM, cg := solveFEM(dim, w, res)
	diff := u.Clone()
	diff.Sub(uFEM)
	fmt.Fprintf(stdout, "vs FEM: RMSE %.6f, max|err| %.6f, rel L2 %.6f (CG %d iters, residual %.3g)\n",
		u.RMSE(uFEM), diff.AbsMax(), diff.Norm2()/uFEM.Norm2(), cg.Iterations, cg.Residual)
	if !cg.Converged {
		fmt.Fprintf(stderr, "mginfer: FEM reference did not converge after %d iterations (residual %.3g); the comparison above is against an unconverged field\n",
			cg.Iterations, cg.Residual)
		return uFEM, false
	}
	return uFEM, true
}

func fieldTensor(dim int, data []float64, res int) *tensor.Tensor {
	if dim == 2 {
		return tensor.FromSlice(data, res, res)
	}
	return tensor.FromSlice(data, res, res, res)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mginfer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		model     = fs.String("model", "", "path to a model saved by mgtrain (required)")
		omegaStr  = fs.String("omega", "0.3105,1.5386,0.0932,-1.2442", "parameter vector ω (4 comma-separated values)")
		omegaFile = fs.String("omega-file", "", "batch mode: file with one ω per line, answered through the batched serving engine")
		res       = fs.Int("res", 64, "inference resolution")
		compare   = fs.Bool("compare", false, "also run the FEM solver and report the error (exits non-zero if the FEM reference does not converge)")
		outCSV    = fs.String("csv", "", "write the predicted field to this CSV path (single-ω mode only)")
		outVTI    = fs.String("vti", "", "write prediction (+diffusivity, +FEM with -compare) to this VTK ImageData path (single-ω mode only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *model == "" {
		fmt.Fprintln(stderr, "mginfer: -model is required")
		return 2
	}
	if *omegaFile != "" && (*outCSV != "" || *outVTI != "") {
		fmt.Fprintln(stderr, "mginfer: -csv and -vti are single-ω outputs; they cannot be combined with -omega-file")
		return 2
	}
	net, err := unet.LoadFile(*model)
	if err != nil {
		fmt.Fprintln(stderr, "mginfer:", err)
		return 1
	}
	// Validate the resolution up front: the U-Net panics mid-forward on a
	// misaligned extent, and a panic is no way to report a flag error.
	if err := net.ValidateRes(*res); err != nil {
		fmt.Fprintf(stderr, "mginfer: -res %d: %v\n", *res, err)
		return 2
	}
	dim := net.Cfg.Dim

	if *omegaFile != "" {
		return runBatch(net, *omegaFile, *res, *compare, stdout, stderr)
	}

	w, err := parseOmega(*omegaStr)
	if err != nil {
		fmt.Fprintln(stderr, "mginfer:", err)
		return 2
	}

	loss := fem.NewEnergyLoss(dim)
	var nu *tensor.Tensor
	if dim == 2 {
		nu = tensor.New(1, 1, *res, *res)
	} else {
		nu = tensor.New(1, 1, *res, *res, *res)
	}
	field.RasterInto(nu.Data, w, dim, *res)
	pred := loss.WithBC(net.Forward(nu, false))
	u := fieldTensor(dim, pred.Data, *res)
	fmt.Fprintf(stdout, "mginfer: %dD field at res %d, u in [%.4f, %.4f], mean %.4f\n",
		dim, *res, u.Min(), u.Max(), u.Mean())

	femOK := true
	var uFEM *tensor.Tensor
	if *compare {
		uFEM, femOK = compareLine(stdout, stderr, dim, w, u, *res)
	}

	if *outVTI != "" {
		var nuField *tensor.Tensor
		if dim == 2 {
			nuField = field.Raster2D(w, *res)
		} else {
			nuField = field.Raster3D(w, *res)
		}
		fields := []vtkio.Field{{Name: "u_mgdiffnet", Data: u}, {Name: "nu", Data: nuField}}
		if uFEM != nil {
			fields = append(fields, vtkio.Field{Name: "u_fem", Data: uFEM})
		}
		if err := vtkio.WriteFile(*outVTI, fields); err != nil {
			fmt.Fprintln(stderr, "mginfer: vti:", err)
			return 1
		}
		fmt.Fprintf(stdout, "VTK ImageData written to %s\n", *outVTI)
	}

	if *outCSV != "" {
		if err := writeCSV(*outCSV, u); err != nil {
			fmt.Fprintln(stderr, "mginfer: csv:", err)
			return 1
		}
		fmt.Fprintf(stdout, "field written to %s\n", *outCSV)
	}
	if !femOK {
		return 1
	}
	return 0
}

// runBatch answers every ω in the file through the serving engine's
// coalescing dispatcher — the many-query workload the engine exists for —
// and prints one summary line per ω.
func runBatch(net *unet.UNet, path string, res int, compare bool, stdout, stderr io.Writer) int {
	ws, err := readOmegaFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "mginfer:", err)
		return 2
	}
	eng, err := serve.NewEngine(serve.Config{Net: net, BatchWindow: -1}) // greedy: a CLI batch is already queued
	if err != nil {
		fmt.Fprintln(stderr, "mginfer:", err)
		return 1
	}
	defer eng.Close()

	results, err := eng.SolveBatch(context.Background(), ws, res)
	if err != nil {
		fmt.Fprintln(stderr, "mginfer:", err)
		return 1
	}
	dim := eng.Dim()
	st := eng.Stats()
	fmt.Fprintf(stdout, "mginfer: %d %dD queries at res %d answered in %d forward passes (%d cache/dedup hits)\n",
		len(ws), dim, res, st.Forwards, st.CacheHits+st.SharedInFlight)
	femOK := true
	for i, r := range results {
		u := fieldTensor(dim, r.U, res)
		fmt.Fprintf(stdout, "omega %d (%.4f,%.4f,%.4f,%.4f): u in [%.4f, %.4f], mean %.4f\n",
			i, ws[i][0], ws[i][1], ws[i][2], ws[i][3], u.Min(), u.Max(), u.Mean())
		if compare {
			if _, ok := compareLine(stdout, stderr, dim, ws[i], u, res); !ok {
				femOK = false
			}
		}
	}
	if !femOK {
		return 1
	}
	return 0
}
