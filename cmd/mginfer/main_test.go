package main

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"

	"mgdiffnet/internal/tensor"
	"mgdiffnet/internal/unet"
)

// saveTestModel writes a tiny untrained (but loadable) model to dir.
func saveTestModel(t *testing.T, dir string) string {
	t.Helper()
	cfg := unet.DefaultConfig(2)
	cfg.Depth = 2
	cfg.BaseFilters = 2
	net := unet.New(cfg)
	path := dir + "/model.bin"
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseOmega(t *testing.T) {
	w, err := parseOmega("0.3105, 1.5386 ,0.0932,-1.2442")
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 0.3105 || w[3] != -1.2442 {
		t.Fatalf("parsed %v", w)
	}
	for _, bad := range []string{"1,2,3", "1,2,3,4,5", "a,b,c,d", ""} {
		if _, err := parseOmega(bad); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	path := t.TempDir() + "/field.csv"
	f := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if err := writeCSV(path, f); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 || lines[0] != "1,2" || lines[1] != "3,4" {
		t.Fatalf("csv content %q", string(data))
	}
}

// The csv writer buffers whole fields; write errors only surface when the
// buffer is flushed, so writeCSV must report them instead of silently
// truncating the solution. /dev/full fails every flushed write with ENOSPC.
func TestWriteCSVReportsFlushError(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	f := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if err := writeCSV("/dev/full", f); err == nil {
		t.Fatal("expected an error writing to /dev/full")
	}
}

// TestRunRejectsMisalignedRes pins the satellite fix: a resolution that is
// not a positive multiple of the model's minimum input size must be a
// one-line exit-2 flag error naming the granularity, not a panic from the
// middle of the forward pass.
func TestRunRejectsMisalignedRes(t *testing.T) {
	model := saveTestModel(t, t.TempDir())
	for _, res := range []int{13, 2, -4, 0, 6} {
		var out, errb bytes.Buffer
		code := run([]string{"-model", model, "-res", strconv.Itoa(res)}, &out, &errb)
		if code != 2 {
			t.Fatalf("res %d: exit code %d, want 2 (stderr %q)", res, code, errb.String())
		}
		if !strings.Contains(errb.String(), "multiple of 4") {
			t.Fatalf("res %d: stderr %q does not name the allowed granularity", res, errb.String())
		}
	}
	// A valid resolution runs to completion.
	var out, errb bytes.Buffer
	if code := run([]string{"-model", model, "-res", "8"}, &out, &errb); code != 0 {
		t.Fatalf("res 8: exit code %d (stderr %q)", code, errb.String())
	}
	if !strings.Contains(out.String(), "2D field at res 8") {
		t.Fatalf("missing summary line: %q", out.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Fatalf("missing -model: code %d, want 2", code)
	}
	model := saveTestModel(t, t.TempDir())
	if code := run([]string{"-model", model, "-omega", "1,2,3"}, &out, &errb); code != 2 {
		t.Fatalf("bad -omega: code %d, want 2", code)
	}
	if code := run([]string{"-model", model, "-omega-file", "f.txt", "-csv", "x.csv"}, &out, &errb); code != 2 {
		t.Fatalf("-omega-file with -csv: code %d, want 2", code)
	}
	if code := run([]string{"-model", "/nonexistent.bin"}, &out, &errb); code != 1 {
		t.Fatalf("unreadable model: code %d, want 1", code)
	}
}

// TestRunOmegaFileBatch drives the batched serving path end to end.
func TestRunOmegaFileBatch(t *testing.T) {
	dir := t.TempDir()
	model := saveTestModel(t, dir)
	omegas := dir + "/omegas.txt"
	content := "# held-out designs\n0.3, 1.5, 0.1, -1.2\n\n1.0, -0.5, 0.2, 0.8\n0.3, 1.5, 0.1, -1.2\n"
	if err := os.WriteFile(omegas, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-model", model, "-omega-file", omegas, "-res", "8"}, &out, &errb); code != 0 {
		t.Fatalf("exit code %d (stderr %q)", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "3 2D queries at res 8") {
		t.Fatalf("missing batch summary: %q", s)
	}
	for _, want := range []string{"omega 0", "omega 1", "omega 2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
	// The duplicated third ω must produce the same summary line as the first.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	first, third := "", ""
	for _, l := range lines {
		if strings.HasPrefix(l, "omega 0 ") {
			first = strings.TrimPrefix(l, "omega 0 ")
		}
		if strings.HasPrefix(l, "omega 2 ") {
			third = strings.TrimPrefix(l, "omega 2 ")
		}
	}
	if first == "" || first != third {
		t.Fatalf("duplicate ω answered differently:\n  %q\n  %q", first, third)
	}

	if code := run([]string{"-model", model, "-omega-file", dir + "/missing.txt", "-res", "8"}, &out, &errb); code != 2 {
		t.Fatalf("missing omega file: code %d, want 2", code)
	}
	bad := dir + "/bad.txt"
	if err := os.WriteFile(bad, []byte("1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-model", model, "-omega-file", bad, "-res", "8"}, &out, &errb); code != 2 {
		t.Fatalf("malformed omega file: code %d, want 2", code)
	}
}

// TestRunCompareConvergence pins the FEM-convergence satellite: -compare
// now reports the CG iteration count alongside the error metrics (and
// run exits non-zero when the reference fails to converge).
func TestRunCompareConvergence(t *testing.T) {
	model := saveTestModel(t, t.TempDir())
	var out, errb bytes.Buffer
	if code := run([]string{"-model", model, "-res", "16", "-compare"}, &out, &errb); code != 0 {
		t.Fatalf("compare at res 16: code %d (stderr %q)", code, errb.String())
	}
	if !strings.Contains(out.String(), "CG") || !strings.Contains(out.String(), "iters") {
		t.Fatalf("comparison line does not report CG iterations: %q", out.String())
	}
}

func TestReadOmegaFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/w.txt"
	if err := os.WriteFile(path, []byte("# c\n\n0.1,0.2,0.3,0.4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ws, err := readOmegaFile(path)
	if err != nil || len(ws) != 1 || ws[0][3] != 0.4 {
		t.Fatalf("got %v, %v", ws, err)
	}
	empty := dir + "/empty.txt"
	if err := os.WriteFile(empty, []byte("# only comments\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readOmegaFile(empty); err == nil {
		t.Fatal("expected error for empty omega file")
	}
}

func TestWriteCSVCreateError(t *testing.T) {
	f := tensor.FromSlice([]float64{1}, 1, 1)
	if err := writeCSV(t.TempDir()+"/missing/field.csv", f); err == nil {
		t.Fatal("expected an error for an uncreatable path")
	}
}
