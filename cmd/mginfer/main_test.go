package main

import (
	"os"
	"strings"
	"testing"

	"mgdiffnet/internal/tensor"
)

func TestParseOmega(t *testing.T) {
	w, err := parseOmega("0.3105, 1.5386 ,0.0932,-1.2442")
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 0.3105 || w[3] != -1.2442 {
		t.Fatalf("parsed %v", w)
	}
	for _, bad := range []string{"1,2,3", "1,2,3,4,5", "a,b,c,d", ""} {
		if _, err := parseOmega(bad); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	path := t.TempDir() + "/field.csv"
	f := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if err := writeCSV(path, f); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 || lines[0] != "1,2" || lines[1] != "3,4" {
		t.Fatalf("csv content %q", string(data))
	}
}

// The csv writer buffers whole fields; write errors only surface when the
// buffer is flushed, so writeCSV must report them instead of silently
// truncating the solution. /dev/full fails every flushed write with ENOSPC.
func TestWriteCSVReportsFlushError(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	f := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if err := writeCSV("/dev/full", f); err == nil {
		t.Fatal("expected an error writing to /dev/full")
	}
}

func TestWriteCSVCreateError(t *testing.T) {
	f := tensor.FromSlice([]float64{1}, 1, 1)
	if err := writeCSV(t.TempDir()+"/missing/field.csv", f); err == nil {
		t.Fatal("expected an error for an uncreatable path")
	}
}
