package main

import (
	"testing"

	"mgdiffnet/internal/core"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]core.Strategy{
		"base": core.Base, "v": core.V, "w": core.W, "f": core.F,
		"half-v": core.HalfV, "halfv": core.HalfV, "HV": core.HalfV,
		" V ": core.V,
	}
	for in, want := range cases {
		got, err := parseStrategy(in)
		if err != nil || got != want {
			t.Fatalf("parseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseStrategy("zigzag"); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}
