package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"mgdiffnet/internal/core"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]core.Strategy{
		"base": core.Base, "v": core.V, "w": core.W, "f": core.F,
		"half-v": core.HalfV, "halfv": core.HalfV, "HV": core.HalfV,
		" V ": core.V,
	}
	for in, want := range cases {
		got, err := parseStrategy(in)
		if err != nil || got != want {
			t.Fatalf("parseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseStrategy("zigzag"); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}

// Invalid flag combinations must exit 2 with a one-line error on stderr,
// never a panic stack trace.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"bad dim":               {"-dim", "4"},
		"bad strategy":          {"-strategy", "zigzag"},
		"zero levels":           {"-levels", "0"},
		"indivisible res":       {"-res", "60", "-levels", "3"},
		"zero samples":          {"-samples", "0"},
		"zero batch":            {"-batch", "0"},
		"nonpositive lr":        {"-lr", "0"},
		"zero max epochs":       {"-max-epochs", "0"},
		"zero restriction":      {"-restriction-epochs", "0"},
		"zero patience":         {"-patience", "0"},
		"zero cycles":           {"-cycles", "0"},
		"zero filters":          {"-filters", "0"},
		"zero workers":          {"-workers", "0"},
		"zero checkpoint-every": {"-checkpoint-every", "0", "-checkpoint", "x.ck"},
		"resume sans path":      {"-resume"},
		"coarsest below min":    {"-res", "16", "-levels", "3"}, // coarsest 4 < U-Net minimum 8
		"unknown flag":          {"-no-such-flag"},
	}
	for name, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Errorf("%s: exit code %d, want 2 (stderr: %q)", name, code, errw.String())
		}
		if strings.Contains(errw.String(), "goroutine") {
			t.Errorf("%s: stderr shows a stack trace: %q", name, errw.String())
		}
	}
}

func tinyArgs(extra ...string) []string {
	args := []string{
		"-dim", "2", "-strategy", "half-v", "-res", "8", "-levels", "1",
		"-samples", "2", "-batch", "2", "-filters", "2",
		"-max-epochs", "1", "-restriction-epochs", "1",
	}
	return append(args, extra...)
}

func TestRunTinyTraining(t *testing.T) {
	var out, errw bytes.Buffer
	model := t.TempDir() + "/model.bin"
	if code := run(tinyArgs("-o", model), &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw.String())
	}
	if !strings.Contains(out.String(), "done: final loss") {
		t.Fatalf("missing summary in output: %q", out.String())
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}
}

func TestRunCheckpointAndResume(t *testing.T) {
	ck := t.TempDir() + "/run.ck"
	var out1, err1 bytes.Buffer
	// -resume with no checkpoint yet starts fresh.
	if code := run(tinyArgs("-checkpoint", ck, "-resume"), &out1, &err1); code != 0 {
		t.Fatalf("first run exit %d, stderr %q", code, err1.String())
	}
	if !strings.Contains(out1.String(), "starting fresh") {
		t.Fatalf("missing fresh-start notice: %q", out1.String())
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	// Resuming a completed run finishes immediately with the saved report.
	var out2, err2 bytes.Buffer
	if code := run(tinyArgs("-checkpoint", ck, "-resume"), &out2, &err2); code != 0 {
		t.Fatalf("resume exit %d, stderr %q", code, err2.String())
	}
	if !strings.Contains(out2.String(), "done: final loss") {
		t.Fatalf("missing summary after resume: %q", out2.String())
	}
}

func TestRunDistributedWorkers(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(tinyArgs("-workers", "2"), &out, &errw); code != 0 {
		t.Fatalf("workers=2 exit %d, stderr %q", code, errw.String())
	}
	if !strings.Contains(out.String(), "2 workers") {
		t.Fatalf("missing worker count in banner: %q", out.String())
	}
}
