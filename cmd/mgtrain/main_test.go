package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"strings"
	"testing"

	"mgdiffnet/internal/core"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]core.Strategy{
		"base": core.Base, "v": core.V, "w": core.W, "f": core.F,
		"half-v": core.HalfV, "halfv": core.HalfV, "HV": core.HalfV,
		" V ": core.V,
	}
	for in, want := range cases {
		got, err := parseStrategy(in)
		if err != nil || got != want {
			t.Fatalf("parseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseStrategy("zigzag"); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
}

// Invalid flag combinations must exit 2 with a one-line error on stderr,
// never a panic stack trace.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := map[string][]string{
		"bad dim":               {"-dim", "4"},
		"bad strategy":          {"-strategy", "zigzag"},
		"zero levels":           {"-levels", "0"},
		"indivisible res":       {"-res", "60", "-levels", "3"},
		"zero samples":          {"-samples", "0"},
		"zero batch":            {"-batch", "0"},
		"nonpositive lr":        {"-lr", "0"},
		"zero max epochs":       {"-max-epochs", "0"},
		"zero restriction":      {"-restriction-epochs", "0"},
		"zero patience":         {"-patience", "0"},
		"zero cycles":           {"-cycles", "0"},
		"zero filters":          {"-filters", "0"},
		"zero workers":          {"-workers", "0"},
		"zero checkpoint-every": {"-checkpoint-every", "0", "-checkpoint", "x.ck"},
		"resume sans path":      {"-resume"},
		"coarsest below min":    {"-res", "16", "-levels", "3"}, // coarsest 4 < U-Net minimum 8
		"unknown flag":          {"-no-such-flag"},

		"unknown transport":   {"-transport", "udp"},
		"tcp without rank":    {"-transport", "tcp", "-peers", "a:1,b:2"},
		"tcp without peers":   {"-transport", "tcp", "-rank", "0"},
		"rank out of range":   {"-transport", "tcp", "-rank", "2", "-peers", "a:1,b:2"},
		"negative rank":       {"-transport", "tcp", "-rank", "-1", "-peers", "a:1,b:2"},
		"duplicate peer":      {"-transport", "tcp", "-rank", "0", "-peers", "a:1,a:1"},
		"empty peer address":  {"-transport", "tcp", "-rank", "0", "-peers", "a:1,,b:2"},
		"tcp with workers":    {"-transport", "tcp", "-rank", "0", "-peers", "a:1,b:2", "-workers", "2"},
		"inproc with rank":    {"-rank", "0"},
		"inproc with peers":   {"-peers", "a:1,b:2"},
		"inproc with elastic": {"-elastic"},
		"elastic sans ck":     {"-transport", "tcp", "-rank", "0", "-peers", "a:1,b:2", "-elastic"},
		"tight hb timeout":    {"-transport", "tcp", "-rank", "0", "-peers", "a:1,b:2", "-heartbeat-timeout", "500ms", "-heartbeat-interval", "400ms"},
		"zero dial timeout":   {"-transport", "tcp", "-rank", "0", "-peers", "a:1,b:2", "-dial-timeout", "0"},
	}
	for name, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Errorf("%s: exit code %d, want 2 (stderr: %q)", name, code, errw.String())
		}
		if strings.Contains(errw.String(), "goroutine") {
			t.Errorf("%s: stderr shows a stack trace: %q", name, errw.String())
		}
	}
}

func tinyArgs(extra ...string) []string {
	args := []string{
		"-dim", "2", "-strategy", "half-v", "-res", "8", "-levels", "1",
		"-samples", "2", "-batch", "2", "-filters", "2",
		"-max-epochs", "1", "-restriction-epochs", "1",
	}
	return append(args, extra...)
}

func TestRunTinyTraining(t *testing.T) {
	var out, errw bytes.Buffer
	model := t.TempDir() + "/model.bin"
	if code := run(tinyArgs("-o", model), &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errw.String())
	}
	if !strings.Contains(out.String(), "done: final loss") {
		t.Fatalf("missing summary in output: %q", out.String())
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("model not written: %v", err)
	}
}

func TestRunCheckpointAndResume(t *testing.T) {
	ck := t.TempDir() + "/run.ck"
	var out1, err1 bytes.Buffer
	// -resume with no checkpoint yet starts fresh.
	if code := run(tinyArgs("-checkpoint", ck, "-resume"), &out1, &err1); code != 0 {
		t.Fatalf("first run exit %d, stderr %q", code, err1.String())
	}
	if !strings.Contains(out1.String(), "starting fresh") {
		t.Fatalf("missing fresh-start notice: %q", out1.String())
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	// Resuming a completed run finishes immediately with the saved report.
	var out2, err2 bytes.Buffer
	if code := run(tinyArgs("-checkpoint", ck, "-resume"), &out2, &err2); code != 0 {
		t.Fatalf("resume exit %d, stderr %q", code, err2.String())
	}
	if !strings.Contains(out2.String(), "done: final loss") {
		t.Fatalf("missing summary after resume: %q", out2.String())
	}
}

func TestRunDistributedWorkers(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(tinyArgs("-workers", "2"), &out, &errw); code != 0 {
		t.Fatalf("workers=2 exit %d, stderr %q", code, errw.String())
	}
	if !strings.Contains(out.String(), "2 workers") {
		t.Fatalf("missing worker count in banner: %q", out.String())
	}
}

// freeLoopbackAddrs reserves n distinct loopback ports by binding and
// releasing them; the small race against other tests is acceptable.
func freeLoopbackAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestRunTCPTwoRanks drives the full launcher path end to end: two run()
// invocations, each one rank of a TCP world on loopback, training the tiny
// problem to completion. Only rank 0 writes the model.
func TestRunTCPTwoRanks(t *testing.T) {
	addrs := freeLoopbackAddrs(t, 2)
	peers := strings.Join(addrs, ",")
	model := t.TempDir() + "/model.bin"

	type result struct {
		code int
		out  string
		err  string
	}
	results := make(chan result, 2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			var out, errw bytes.Buffer
			args := tinyArgs("-transport", "tcp", "-rank", fmt.Sprint(rank),
				"-peers", peers, "-dial-timeout", "20s")
			if rank == 0 {
				args = append(args, "-o", model)
			}
			code := run(args, &out, &errw)
			results <- result{code, out.String(), errw.String()}
		}(rank)
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != 0 {
			t.Fatalf("tcp rank exited %d\nstdout: %s\nstderr: %s", r.code, r.out, r.err)
		}
		if !strings.Contains(r.out, "done: final loss") {
			t.Fatalf("missing summary: %q", r.out)
		}
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatalf("rank 0 did not write the model: %v", err)
	}
}
