// Command mgtrain trains an MGDiffNet model with one of the paper's
// multigrid schedules — single-process or data-parallel — and optionally
// saves the weights for cmd/mginfer. Long runs can write durable
// checkpoints and resume after a kill with bit-identical results.
//
// Examples:
//
//	mgtrain -dim 2 -strategy half-v -res 64 -levels 3 -samples 32 -o model.bin
//	mgtrain -workers 4 -checkpoint run.ck -checkpoint-every 5 ...
//	mgtrain -workers 4 -checkpoint run.ck -resume ...   # after a kill
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mgdiffnet/internal/core"
	"mgdiffnet/internal/dist"
	"mgdiffnet/internal/unet"
)

func parseStrategy(s string) (core.Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "base":
		return core.Base, nil
	case "v":
		return core.V, nil
	case "w":
		return core.W, nil
	case "f":
		return core.F, nil
	case "half-v", "halfv", "hv":
		return core.HalfV, nil
	}
	return core.Base, fmt.Errorf("unknown strategy %q (want base, v, w, f or half-v)", s)
}

// trainFlags collects every flag value so validation can run before any
// trainer is constructed.
type trainFlags struct {
	dim, res, levels, samples, batch  int
	restEpochs, maxEpochs, patience   int
	cycles, filters, workers, ckEvery int
	lr                                float64
	adapt, resume                     bool
	seed                              int64
	out, checkpoint                   string
}

// validate rejects inconsistent flag combinations with one-line errors so
// main can exit 2 instead of surfacing a panic stack trace from deep in
// the trainer.
func (f *trainFlags) validate() error {
	if f.dim != 2 && f.dim != 3 {
		return fmt.Errorf("-dim must be 2 or 3, got %d", f.dim)
	}
	if f.levels < 1 {
		return fmt.Errorf("-levels must be >= 1, got %d", f.levels)
	}
	if f.res < 1 {
		return fmt.Errorf("-res must be >= 1, got %d", f.res)
	}
	if f.res%(1<<(f.levels-1)) != 0 {
		return fmt.Errorf("-res %d must be divisible by 2^(levels-1) = %d", f.res, 1<<(f.levels-1))
	}
	if f.samples < 1 {
		return fmt.Errorf("-samples must be >= 1, got %d", f.samples)
	}
	if f.batch < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", f.batch)
	}
	if f.lr <= 0 {
		return fmt.Errorf("-lr must be > 0, got %g", f.lr)
	}
	if f.restEpochs < 1 {
		return fmt.Errorf("-restriction-epochs must be >= 1, got %d", f.restEpochs)
	}
	if f.maxEpochs < 1 {
		return fmt.Errorf("-max-epochs must be >= 1, got %d", f.maxEpochs)
	}
	if f.patience < 1 {
		return fmt.Errorf("-patience must be >= 1, got %d", f.patience)
	}
	if f.cycles < 1 {
		return fmt.Errorf("-cycles must be >= 1, got %d", f.cycles)
	}
	if f.filters < 1 {
		return fmt.Errorf("-filters must be >= 1, got %d", f.filters)
	}
	if f.workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", f.workers)
	}
	if f.ckEvery < 1 {
		return fmt.Errorf("-checkpoint-every must be >= 1, got %d", f.ckEvery)
	}
	if f.resume && f.checkpoint == "" {
		return errors.New("-resume requires -checkpoint")
	}
	// The default U-Net halves the extent Depth times, so the coarsest
	// level must still be a positive multiple of its minimum input size.
	min := 1 << unet.DefaultConfig(f.dim).Depth
	coarsest := f.res >> (f.levels - 1)
	if coarsest < min || coarsest%min != 0 {
		return fmt.Errorf("coarsest resolution %d (res %d over %d levels) must be a positive multiple of the U-Net minimum input size %d",
			coarsest, f.res, f.levels, min)
	}
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	// Residual invalid-configuration panics become one-line errors too.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "mgtrain: %v\n", r)
			code = 2
		}
	}()

	fs := flag.NewFlagSet("mgtrain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var f trainFlags
	var strategy string
	fs.IntVar(&f.dim, "dim", 2, "spatial dimensionality (2 or 3)")
	fs.StringVar(&strategy, "strategy", "half-v", "training schedule: base, v, w, f, half-v")
	fs.IntVar(&f.res, "res", 64, "finest nodal resolution")
	fs.IntVar(&f.levels, "levels", 3, "number of multigrid levels")
	fs.IntVar(&f.samples, "samples", 32, "number of Sobol diffusivity maps")
	fs.IntVar(&f.batch, "batch", 8, "global mini-batch size")
	fs.Float64Var(&f.lr, "lr", 1e-3, "Adam learning rate")
	fs.IntVar(&f.restEpochs, "restriction-epochs", 2, "epochs per restriction stage")
	fs.IntVar(&f.maxEpochs, "max-epochs", 30, "epoch cap per prolongation stage")
	fs.IntVar(&f.patience, "patience", 4, "early-stopping patience")
	fs.BoolVar(&f.adapt, "adapt", false, "enable architectural adaptation (Table 2)")
	fs.IntVar(&f.cycles, "cycles", 1, "number of multigrid cycles (paper uses 1)")
	fs.IntVar(&f.filters, "filters", 16, "U-Net base filter count")
	fs.Int64Var(&f.seed, "seed", 42, "initialization seed")
	fs.IntVar(&f.workers, "workers", 1, "data-parallel worker count (1 = single-process)")
	fs.StringVar(&f.checkpoint, "checkpoint", "", "checkpoint file path (enables durable snapshots)")
	fs.IntVar(&f.ckEvery, "checkpoint-every", 1, "epochs between checkpoint snapshots")
	fs.BoolVar(&f.resume, "resume", false, "resume from -checkpoint if it exists")
	fs.StringVar(&f.out, "o", "", "output path for the trained model (gob)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	strat, err := parseStrategy(strategy)
	if err != nil {
		fmt.Fprintln(stderr, "mgtrain:", err)
		return 2
	}
	if err := f.validate(); err != nil {
		fmt.Fprintln(stderr, "mgtrain:", err)
		return 2
	}

	ncfg := unet.DefaultConfig(f.dim)
	ncfg.BaseFilters = f.filters

	cfg := core.Config{
		Dim:               f.dim,
		Strategy:          strat,
		Levels:            f.levels,
		FinestRes:         f.res,
		Samples:           f.samples,
		BatchSize:         f.batch,
		LR:                f.lr,
		RestrictionEpochs: f.restEpochs,
		MaxEpochsPerStage: f.maxEpochs,
		Patience:          f.patience,
		MinDelta:          1e-6,
		Adapt:             f.adapt,
		Cycles:            f.cycles,
		Seed:              f.seed,
		Net:               &ncfg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		},
	}

	var backend core.EpochBackend
	var trainedNet func() *unet.UNet
	if f.workers > 1 {
		pt, err := dist.NewParallelTrainer(dist.ParallelConfig{
			Workers:     f.workers,
			Dim:         f.dim,
			Res:         f.res,
			Samples:     f.samples,
			GlobalBatch: f.batch,
			LR:          f.lr,
			Seed:        f.seed,
			Net:         &ncfg,
		})
		if err != nil {
			fmt.Fprintln(stderr, "mgtrain:", err)
			return 2
		}
		defer pt.Close()
		backend = pt
		trainedNet = pt.Net
	} else {
		tr := core.NewTrainer(cfg)
		backend = tr
		trainedNet = func() *unet.UNet { return tr.Net }
	}

	opts := core.RunOptions{CheckpointPath: f.checkpoint, CheckpointEvery: f.ckEvery}
	if f.resume {
		ck, err := core.LoadCheckpoint(f.checkpoint)
		switch {
		case errors.Is(err, os.ErrNotExist):
			fmt.Fprintf(stdout, "mgtrain: no checkpoint at %s yet, starting fresh\n", f.checkpoint)
		case err != nil:
			fmt.Fprintln(stderr, "mgtrain:", err)
			return 2
		default:
			opts.Resume = ck
		}
	}

	fmt.Fprintf(stdout, "mgtrain: %s, %dD, finest res %d, %d levels, %d workers\n",
		strat, f.dim, f.res, f.levels, f.workers)
	rep, err := core.RunSchedule(cfg, backend, opts)
	if err != nil {
		fmt.Fprintln(stderr, "mgtrain:", err)
		return 1
	}
	fmt.Fprintf(stdout, "done: final loss %.6f in %.2fs over %d stages\n",
		rep.FinalLoss, rep.TotalSeconds, len(rep.Stages))
	for lv, sec := range rep.TimePerLevel() {
		fmt.Fprintf(stdout, "  level %d: %.2fs\n", lv, sec)
	}

	if f.out != "" {
		if err := trainedNet().SaveFile(f.out); err != nil {
			fmt.Fprintln(stderr, "mgtrain: save:", err)
			return 1
		}
		fmt.Fprintf(stdout, "model written to %s\n", f.out)
	}
	return 0
}
