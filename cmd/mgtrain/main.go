// Command mgtrain trains an MGDiffNet model with one of the paper's
// multigrid schedules — single-process or data-parallel — and optionally
// saves the weights for cmd/mginfer. Long runs can write durable
// checkpoints and resume after a kill with bit-identical results.
//
// Data parallelism comes in two transports: in-process worker goroutines
// (-workers) and a multi-process TCP world (-transport tcp), where every
// process is one rank of the same collective and trains bit-identically to
// the in-process mesh. With -elastic, surviving ranks of a TCP world
// detect a dead rank, reform without it, and resume from the last shared
// checkpoint.
//
// Examples:
//
//	mgtrain -dim 2 -strategy half-v -res 64 -levels 3 -samples 32 -o model.bin
//	mgtrain -workers 4 -checkpoint run.ck -checkpoint-every 5 ...
//	mgtrain -workers 4 -checkpoint run.ck -resume ...   # after a kill
//	mgtrain -transport tcp -rank 0 -peers host0:7000,host1:7000 \
//	        -elastic -checkpoint run.ck ...             # one process per rank
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
	"time"

	"mgdiffnet/internal/core"
	"mgdiffnet/internal/dist"
	"mgdiffnet/internal/unet"
)

func parseStrategy(s string) (core.Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "base":
		return core.Base, nil
	case "v":
		return core.V, nil
	case "w":
		return core.W, nil
	case "f":
		return core.F, nil
	case "half-v", "halfv", "hv":
		return core.HalfV, nil
	}
	return core.Base, fmt.Errorf("unknown strategy %q (want base, v, w, f or half-v)", s)
}

// trainFlags collects every flag value so validation can run before any
// trainer is constructed.
type trainFlags struct {
	dim, res, levels, samples, batch  int
	restEpochs, maxEpochs, patience   int
	cycles, filters, workers, ckEvery int
	lr                                float64
	adapt, resume                     bool
	seed                              int64
	out, checkpoint                   string

	transport, peers       string
	rank                   int
	elastic                bool
	hbInterval, hbTimeout  time.Duration
	opTimeout, dialTimeout time.Duration
	peerList               []string // parsed from peers by validate
}

// validate rejects inconsistent flag combinations with one-line errors so
// main can exit 2 instead of surfacing a panic stack trace from deep in
// the trainer.
func (f *trainFlags) validate() error {
	if f.dim != 2 && f.dim != 3 {
		return fmt.Errorf("-dim must be 2 or 3, got %d", f.dim)
	}
	if f.levels < 1 {
		return fmt.Errorf("-levels must be >= 1, got %d", f.levels)
	}
	if f.res < 1 {
		return fmt.Errorf("-res must be >= 1, got %d", f.res)
	}
	if f.res%(1<<(f.levels-1)) != 0 {
		return fmt.Errorf("-res %d must be divisible by 2^(levels-1) = %d", f.res, 1<<(f.levels-1))
	}
	if f.samples < 1 {
		return fmt.Errorf("-samples must be >= 1, got %d", f.samples)
	}
	if f.batch < 1 {
		return fmt.Errorf("-batch must be >= 1, got %d", f.batch)
	}
	if f.lr <= 0 {
		return fmt.Errorf("-lr must be > 0, got %g", f.lr)
	}
	if f.restEpochs < 1 {
		return fmt.Errorf("-restriction-epochs must be >= 1, got %d", f.restEpochs)
	}
	if f.maxEpochs < 1 {
		return fmt.Errorf("-max-epochs must be >= 1, got %d", f.maxEpochs)
	}
	if f.patience < 1 {
		return fmt.Errorf("-patience must be >= 1, got %d", f.patience)
	}
	if f.cycles < 1 {
		return fmt.Errorf("-cycles must be >= 1, got %d", f.cycles)
	}
	if f.filters < 1 {
		return fmt.Errorf("-filters must be >= 1, got %d", f.filters)
	}
	if f.workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", f.workers)
	}
	if f.ckEvery < 1 {
		return fmt.Errorf("-checkpoint-every must be >= 1, got %d", f.ckEvery)
	}
	if f.resume && f.checkpoint == "" {
		return errors.New("-resume requires -checkpoint")
	}
	switch f.transport {
	case "inproc":
		if f.rank >= 0 {
			return errors.New("-rank only applies to -transport tcp")
		}
		if f.peers != "" {
			return errors.New("-peers only applies to -transport tcp")
		}
		if f.elastic {
			return errors.New("-elastic only applies to -transport tcp")
		}
	case "tcp":
		if f.rank < 0 {
			return errors.New("-transport tcp requires -rank")
		}
		if f.peers == "" {
			return errors.New("-transport tcp requires -peers")
		}
		if f.workers != 1 {
			return errors.New("-transport tcp runs one process per rank; drop -workers and start one mgtrain per peer")
		}
		f.peerList = strings.Split(f.peers, ",")
		for i, a := range f.peerList {
			f.peerList[i] = strings.TrimSpace(a)
		}
		if err := dist.ValidateWorld(f.rank, f.peerList); err != nil {
			return err
		}
		if f.elastic && f.checkpoint == "" {
			return errors.New("-elastic requires -checkpoint (survivors resume from it)")
		}
		if f.hbInterval <= 0 || f.hbTimeout <= 0 {
			return errors.New("-heartbeat-interval and -heartbeat-timeout must be > 0")
		}
		if f.hbTimeout < 2*f.hbInterval {
			return fmt.Errorf("-heartbeat-timeout %v must be at least twice -heartbeat-interval %v", f.hbTimeout, f.hbInterval)
		}
		if f.dialTimeout <= 0 {
			return errors.New("-dial-timeout must be > 0")
		}
	default:
		return fmt.Errorf("unknown transport %q (want inproc or tcp)", f.transport)
	}
	// The default U-Net halves the extent Depth times, so the coarsest
	// level must still be a positive multiple of its minimum input size.
	min := 1 << unet.DefaultConfig(f.dim).Depth
	coarsest := f.res >> (f.levels - 1)
	if coarsest < min || coarsest%min != 0 {
		return fmt.Errorf("coarsest resolution %d (res %d over %d levels) must be a positive multiple of the U-Net minimum input size %d",
			coarsest, f.res, f.levels, min)
	}
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	// Residual invalid-configuration panics become one-line errors too.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(stderr, "mgtrain: %v\n", r)
			code = 2
		}
	}()

	fs := flag.NewFlagSet("mgtrain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var f trainFlags
	var strategy string
	fs.IntVar(&f.dim, "dim", 2, "spatial dimensionality (2 or 3)")
	fs.StringVar(&strategy, "strategy", "half-v", "training schedule: base, v, w, f, half-v")
	fs.IntVar(&f.res, "res", 64, "finest nodal resolution")
	fs.IntVar(&f.levels, "levels", 3, "number of multigrid levels")
	fs.IntVar(&f.samples, "samples", 32, "number of Sobol diffusivity maps")
	fs.IntVar(&f.batch, "batch", 8, "global mini-batch size")
	fs.Float64Var(&f.lr, "lr", 1e-3, "Adam learning rate")
	fs.IntVar(&f.restEpochs, "restriction-epochs", 2, "epochs per restriction stage")
	fs.IntVar(&f.maxEpochs, "max-epochs", 30, "epoch cap per prolongation stage")
	fs.IntVar(&f.patience, "patience", 4, "early-stopping patience")
	fs.BoolVar(&f.adapt, "adapt", false, "enable architectural adaptation (Table 2)")
	fs.IntVar(&f.cycles, "cycles", 1, "number of multigrid cycles (paper uses 1)")
	fs.IntVar(&f.filters, "filters", 16, "U-Net base filter count")
	fs.Int64Var(&f.seed, "seed", 42, "initialization seed")
	fs.IntVar(&f.workers, "workers", 1, "data-parallel worker count (1 = single-process)")
	fs.StringVar(&f.checkpoint, "checkpoint", "", "checkpoint file path (enables durable snapshots)")
	fs.IntVar(&f.ckEvery, "checkpoint-every", 1, "epochs between checkpoint snapshots")
	fs.BoolVar(&f.resume, "resume", false, "resume from -checkpoint if it exists")
	fs.StringVar(&f.out, "o", "", "output path for the trained model (gob)")
	fs.StringVar(&f.transport, "transport", "inproc", "data-parallel transport: inproc (in-process workers) or tcp (one process per rank)")
	fs.IntVar(&f.rank, "rank", -1, "this process's rank in the -peers list (tcp)")
	fs.StringVar(&f.peers, "peers", "", "comma-separated host:port of every rank, in rank order (tcp)")
	fs.BoolVar(&f.elastic, "elastic", false, "on a rank failure, reform the surviving ranks and resume from -checkpoint (tcp)")
	fs.DurationVar(&f.hbInterval, "heartbeat-interval", 500*time.Millisecond, "max send-idle time before a heartbeat frame (tcp)")
	fs.DurationVar(&f.hbTimeout, "heartbeat-timeout", 5*time.Second, "receive silence after which a peer is declared dead (tcp)")
	fs.DurationVar(&f.opTimeout, "op-timeout", 2*time.Minute, "per-operation send/recv deadline (tcp)")
	fs.DurationVar(&f.dialTimeout, "dial-timeout", 30*time.Second, "total rendezvous budget for assembling the world (tcp)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	strat, err := parseStrategy(strategy)
	if err != nil {
		fmt.Fprintln(stderr, "mgtrain:", err)
		return 2
	}
	if err := f.validate(); err != nil {
		fmt.Fprintln(stderr, "mgtrain:", err)
		return 2
	}

	ncfg := unet.DefaultConfig(f.dim)
	ncfg.BaseFilters = f.filters

	cfg := core.Config{
		Dim:               f.dim,
		Strategy:          strat,
		Levels:            f.levels,
		FinestRes:         f.res,
		Samples:           f.samples,
		BatchSize:         f.batch,
		LR:                f.lr,
		RestrictionEpochs: f.restEpochs,
		MaxEpochsPerStage: f.maxEpochs,
		Patience:          f.patience,
		MinDelta:          1e-6,
		Adapt:             f.adapt,
		Cycles:            f.cycles,
		Seed:              f.seed,
		Net:               &ncfg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		},
	}

	if f.transport == "tcp" {
		return runTCP(&f, cfg, &ncfg, stdout, stderr)
	}

	var backend core.EpochBackend
	var trainedNet func() *unet.UNet
	if f.workers > 1 {
		pt, err := dist.NewParallelTrainer(dist.ParallelConfig{
			Workers:     f.workers,
			Dim:         f.dim,
			Res:         f.res,
			Samples:     f.samples,
			GlobalBatch: f.batch,
			LR:          f.lr,
			Seed:        f.seed,
			Net:         &ncfg,
		})
		if err != nil {
			fmt.Fprintln(stderr, "mgtrain:", err)
			return 2
		}
		defer pt.Close()
		backend = pt
		trainedNet = pt.Net
	} else {
		tr := core.NewTrainer(cfg)
		backend = tr
		trainedNet = func() *unet.UNet { return tr.Net }
	}

	opts := core.RunOptions{CheckpointPath: f.checkpoint, CheckpointEvery: f.ckEvery}
	if f.resume {
		ck, err := core.LoadCheckpoint(f.checkpoint)
		switch {
		case errors.Is(err, os.ErrNotExist):
			fmt.Fprintf(stdout, "mgtrain: no checkpoint at %s yet, starting fresh\n", f.checkpoint)
		case err != nil:
			fmt.Fprintln(stderr, "mgtrain:", err)
			return 2
		default:
			opts.Resume = ck
		}
	}

	fmt.Fprintf(stdout, "mgtrain: %s, %dD, finest res %d, %d levels, %d workers\n",
		strat, f.dim, f.res, f.levels, f.workers)
	rep, err := core.RunSchedule(cfg, backend, opts)
	if err != nil {
		fmt.Fprintln(stderr, "mgtrain:", err)
		return 1
	}
	fmt.Fprintf(stdout, "done: final loss %.6f in %.2fs over %d stages\n",
		rep.FinalLoss, rep.TotalSeconds, len(rep.Stages))
	for lv, sec := range rep.TimePerLevel() {
		fmt.Fprintf(stdout, "  level %d: %.2fs\n", lv, sec)
	}

	if f.out != "" {
		if err := trainedNet().SaveFile(f.out); err != nil {
			fmt.Fprintln(stderr, "mgtrain: save:", err)
			return 1
		}
		fmt.Fprintf(stdout, "model written to %s\n", f.out)
	}
	return 0
}

// runTCP runs this process as one rank of a multi-process TCP world. The
// loop body is one world incarnation: rendezvous, train, and — when a rank
// dies and -elastic is set — abort with gossip, shrink the address list,
// and go around again as a rank of the smaller world, resuming from the
// shared checkpoint. Only global rank 0 writes the checkpoint (and the
// final model): per-rank checkpoints could disagree about how far training
// got at the moment of a failure, while a single writer leaves exactly one
// resume point that every survivor reads.
func runTCP(f *trainFlags, cfg core.Config, ncfg *unet.Config, stdout, stderr io.Writer) int {
	peers := f.peerList
	rank := f.rank
	self := peers[rank]

	opt := dist.DefaultTCPOptions()
	opt.HeartbeatInterval = f.hbInterval
	opt.HeartbeatTimeout = f.hbTimeout
	opt.OpTimeout = f.opTimeout
	opt.DialTimeout = f.dialTimeout
	opt.Logf = func(format string, args ...any) { fmt.Fprintf(stdout, "mgtrain: "+format+"\n", args...) }

	for attempt := 0; ; attempt++ {
		tr, err := dist.NewTCPTransport(rank, peers, opt)
		if err != nil {
			fmt.Fprintln(stderr, "mgtrain:", err)
			return 1
		}
		pt, err := dist.NewParallelTrainer(dist.ParallelConfig{
			Transport:   tr,
			Dim:         f.dim,
			Res:         f.res,
			Samples:     f.samples,
			GlobalBatch: f.batch,
			LR:          f.lr,
			Seed:        f.seed,
			Net:         ncfg,
		})
		if err != nil {
			tr.Close()
			fmt.Fprintln(stderr, "mgtrain:", err)
			return 2
		}

		opts := core.RunOptions{CheckpointEvery: f.ckEvery}
		if rank == 0 {
			opts.CheckpointPath = f.checkpoint
		}
		// Every rank of a resuming or reformed world loads the same shared
		// checkpoint file, so all replicas restart bit-identical.
		if f.checkpoint != "" && (f.resume || attempt > 0) {
			ck, err := core.LoadCheckpoint(f.checkpoint)
			switch {
			case errors.Is(err, os.ErrNotExist):
				fmt.Fprintf(stdout, "mgtrain: no checkpoint at %s yet, starting fresh\n", f.checkpoint)
			case err != nil:
				pt.Close()
				tr.Close()
				fmt.Fprintln(stderr, "mgtrain:", err)
				return 2
			default:
				opts.Resume = ck
			}
		}

		fmt.Fprintf(stdout, "mgtrain: %s, %dD, finest res %d, %d levels; tcp rank %d of %d\n",
			cfg.Strategy, f.dim, f.res, f.levels, rank, len(peers))
		rep, err := core.RunSchedule(cfg, pt, opts)
		pt.Close()
		if err == nil {
			tr.Close()
			fmt.Fprintf(stdout, "done: final loss %.6f in %.2fs over %d stages\n",
				rep.FinalLoss, rep.TotalSeconds, len(rep.Stages))
			if f.out != "" && rank == 0 {
				if err := pt.Net().SaveFile(f.out); err != nil {
					fmt.Fprintln(stderr, "mgtrain: save:", err)
					return 1
				}
				fmt.Fprintf(stdout, "model written to %s\n", f.out)
			}
			return 0
		}

		dead := tr.Failed()
		tr.CloseAbort(dead)
		if !f.elastic || len(dead) == 0 || len(dead) >= len(peers)-1 {
			fmt.Fprintln(stderr, "mgtrain:", err)
			return 1
		}
		survivors := make([]string, 0, len(peers)-len(dead))
		for q, addr := range peers {
			if !slices.Contains(dead, q) {
				survivors = append(survivors, addr)
			}
		}
		peers = survivors
		rank = slices.Index(peers, self)
		if rank < 0 {
			// This rank is in somebody's dead set (e.g. a transient stall):
			// it must not rejoin a world that has already written it off.
			fmt.Fprintln(stderr, "mgtrain: this rank was declared dead by the surviving world; exiting")
			return 1
		}
		fmt.Fprintf(stdout, "mgtrain: ranks %v dead after %v; reforming as rank %d of %d from checkpoint %s\n",
			dead, err, rank, len(peers), f.checkpoint)
	}
}
