// Command mgtrain trains an MGDiffNet model with one of the paper's
// multigrid schedules and optionally saves the weights for cmd/mginfer.
//
// Example:
//
//	mgtrain -dim 2 -strategy half-v -res 64 -levels 3 -samples 32 -o model.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mgdiffnet/internal/core"
	"mgdiffnet/internal/unet"
)

func parseStrategy(s string) (core.Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "base":
		return core.Base, nil
	case "v":
		return core.V, nil
	case "w":
		return core.W, nil
	case "f":
		return core.F, nil
	case "half-v", "halfv", "hv":
		return core.HalfV, nil
	}
	return core.Base, fmt.Errorf("unknown strategy %q (want base, v, w, f or half-v)", s)
}

func main() {
	var (
		dim        = flag.Int("dim", 2, "spatial dimensionality (2 or 3)")
		strategy   = flag.String("strategy", "half-v", "training schedule: base, v, w, f, half-v")
		res        = flag.Int("res", 64, "finest nodal resolution")
		levels     = flag.Int("levels", 3, "number of multigrid levels")
		samples    = flag.Int("samples", 32, "number of Sobol diffusivity maps")
		batch      = flag.Int("batch", 8, "global mini-batch size")
		lr         = flag.Float64("lr", 1e-3, "Adam learning rate")
		restEpochs = flag.Int("restriction-epochs", 2, "epochs per restriction stage")
		maxEpochs  = flag.Int("max-epochs", 30, "epoch cap per prolongation stage")
		patience   = flag.Int("patience", 4, "early-stopping patience")
		adapt      = flag.Bool("adapt", false, "enable architectural adaptation (Table 2)")
		cycles     = flag.Int("cycles", 1, "number of multigrid cycles (paper uses 1)")
		filters    = flag.Int("filters", 16, "U-Net base filter count")
		seed       = flag.Int64("seed", 42, "initialization seed")
		out        = flag.String("o", "", "output path for the trained model (gob)")
	)
	flag.Parse()

	strat, err := parseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mgtrain:", err)
		os.Exit(2)
	}

	ncfg := unet.DefaultConfig(*dim)
	ncfg.BaseFilters = *filters

	cfg := core.Config{
		Dim:               *dim,
		Strategy:          strat,
		Levels:            *levels,
		FinestRes:         *res,
		Samples:           *samples,
		BatchSize:         *batch,
		LR:                *lr,
		RestrictionEpochs: *restEpochs,
		MaxEpochsPerStage: *maxEpochs,
		Patience:          *patience,
		MinDelta:          1e-6,
		Adapt:             *adapt,
		Cycles:            *cycles,
		Seed:              *seed,
		Net:               &ncfg,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}

	tr := core.NewTrainer(cfg)
	fmt.Printf("mgtrain: %s, %dD, finest res %d, %d levels, %d params\n",
		strat, *dim, *res, *levels, tr.Net.ParamCount())
	rep := tr.Run()
	fmt.Printf("done: final loss %.6f in %.2fs over %d stages\n",
		rep.FinalLoss, rep.TotalSeconds, len(rep.Stages))
	for lv, sec := range rep.TimePerLevel() {
		fmt.Printf("  level %d: %.2fs\n", lv, sec)
	}

	if *out != "" {
		if err := tr.Net.SaveFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "mgtrain: save:", err)
			os.Exit(1)
		}
		fmt.Printf("model written to %s\n", *out)
	}
}
